//! Top-k ranked retrieval over an [`Index`]: the flat scoring kernel.
//!
//! One query runs in three dense passes, shared verbatim by the unsharded
//! [`Searcher`] and the per-shard loop of [`crate::ShardedSearcher`]:
//!
//! 1. **Resolve** each distinct query term through the dictionary once
//!    ([`Index::term_id`]) and fold its corpus statistics into a
//!    [`TermScorer`] (the IDF `ln()` is paid here, not per posting).
//! 2. **Accumulate** over the term's CSR postings slices into a dense
//!    [`ScoreScratch`]: `Vec`-indexed score/matched-count slots with epoch
//!    tags, so the buffer is reused across queries without clearing.
//! 3. **Select** the top `k` with a bounded heap ordered by `rank_hits`
//!    instead of sorting every matched document.
//!
//! Every floating-point addition happens in the same term-order/doc-order
//! sequence as the pre-CSR kernel, and `rank_hits` is a total order on
//! distinct documents, so results are bit-identical to the naive
//! HashMap-accumulate/sort-everything reference (property-tested in
//! `tests/prop_ir.rs` and held by the CI determinism gate).

use crate::document::DocId;
use crate::index::{Index, TermId};
use crate::score::{ScoringFunction, TermScorer, TermStats};
use std::cell::RefCell;
use std::collections::BinaryHeap;
use std::sync::Mutex;

/// A ranked search hit.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// Internal document id (resolve with [`Index::external_id`]).
    pub doc: DocId,
    /// Accumulated relevance score.
    pub score: f64,
    /// How many distinct query terms matched the document.
    pub matched_terms: usize,
}

/// Executes queries against a borrowed index.
///
/// A `Searcher` is a stateless view (`&Index` + a copyable scoring config):
/// construct one per thread, or share one across threads — both are safe
/// and equivalent. Asserted `Send + Sync` below. Mutable query state lives
/// in a [`ScoreScratch`] — thread-local by default, caller-owned via
/// [`Searcher::search_terms_where_with`].
#[derive(Debug, Clone)]
pub struct Searcher<'a> {
    index: &'a Index,
    scoring: ScoringFunction,
}

const fn assert_send_sync<T: Send + Sync>() {}
const _: () = assert_send_sync::<Searcher<'static>>();
const _: () = assert_send_sync::<ScratchPool>();

/// De-duplicate query terms in **first-occurrence order**, remembering
/// multiplicity (a repeated query term contributes proportionally).
///
/// The order matters: per-document scores are floating-point sums over the
/// query terms, and summing in `HashMap` iteration order made two
/// evaluations of the same query differ in the last ulp. Search results
/// must be bit-for-bit reproducible — the concurrent engine upstream
/// asserts batch ≡ sequential ≡ replay — so the term order has to be a
/// pure function of the query. Queries are a handful of terms, hence the
/// quadratic scan instead of a map.
pub(crate) fn dedup_terms(terms: &[String]) -> Vec<(&str, usize)> {
    let mut out: Vec<(&str, usize)> = Vec::with_capacity(terms.len());
    for t in terms {
        match out.iter_mut().find(|(s, _)| *s == t.as_str()) {
            Some((_, c)) => *c += 1,
            None => out.push((t.as_str(), 1)),
        }
    }
    out
}

/// The ranking order of hits: descending score, ties broken by ascending
/// doc id. Shared by the unsharded selection and the sharded per-shard
/// selection + top-k merge, so both paths order identical score sets
/// identically. Total on distinct documents — the doc-id tiebreak means no
/// two hits ever compare `Equal` — which is what makes bounded top-k
/// selection equivalent to sort-everything-then-truncate.
pub(crate) fn rank_hits(a: &Hit, b: &Hit) -> std::cmp::Ordering {
    b.score
        .partial_cmp(&a.score)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then(a.doc.cmp(&b.doc))
}

/// One document's accumulator slot (see [`ScoreScratch`]). 16 bytes, so a
/// doc's score, match count, and liveness tag share a cache line touch.
#[derive(Debug, Clone, Copy, Default)]
struct DocAcc {
    score: f64,
    matched: u32,
    /// Slot is live iff this equals the scratch's current epoch.
    epoch: u32,
}

/// Reusable dense accumulation state for the scoring kernel.
///
/// Holds one `DocAcc` slot per document, indexed directly by local
/// [`DocId`] — no hashing — plus the list of documents touched by the
/// current query. Instead of zeroing `num_docs` slots per query, each query
/// bumps an **epoch**: a slot whose tag differs from the current epoch is
/// logically empty and is re-initialized on first touch. On the (once per
/// 4 billion queries) epoch wrap every tag is reset for real.
///
/// # Reuse rules
///
/// - A scratch may be reused across queries, indexes, and shards of any
///   size (it grows to the largest `num_docs` it has served, and never
///   shrinks).
/// - It is plain mutable state: one query at a time per scratch. Share
///   scratches across threads through a [`ScratchPool`], not `&mut`.
/// - Droppable at any time; it caches no index content, only capacity.
#[derive(Debug, Default)]
pub struct ScoreScratch {
    acc: Vec<DocAcc>,
    touched: Vec<DocId>,
    epoch: u32,
}

impl ScoreScratch {
    /// An empty scratch; it sizes itself to each query's index.
    pub fn new() -> Self {
        ScoreScratch::default()
    }

    /// Start a query over `num_docs` documents: grow if needed, invalidate
    /// every slot by bumping the epoch, forget the touched list.
    fn begin(&mut self, num_docs: usize) {
        if self.acc.len() < num_docs {
            self.acc.resize(num_docs, DocAcc::default());
        }
        if self.epoch == u32::MAX {
            // Wrap: tags from 4B queries ago could collide with a fresh
            // epoch, so pay one full reset and restart the cycle.
            self.acc.fill(DocAcc::default());
            self.epoch = 0;
        }
        self.epoch += 1;
        self.touched.clear();
    }

    /// Add one posting's contribution to `doc` (first touch initializes).
    #[inline]
    fn add(&mut self, doc: DocId, score: f64) {
        let slot = &mut self.acc[doc as usize];
        if slot.epoch == self.epoch {
            slot.score += score;
            slot.matched += 1;
        } else {
            *slot = DocAcc {
                score,
                matched: 1,
                epoch: self.epoch,
            };
            self.touched.push(doc);
        }
    }
}

/// A lock-protected free list of [`ScoreScratch`] buffers for callers whose
/// worker threads are too short-lived to amortize a thread-local (the
/// sharded searcher spawns scoped threads per query; an engine owning a
/// pool lets those threads inherit warm buffers instead of reallocating).
///
/// `take` pops a warm scratch (or makes a cold one), `put` returns it. The
/// lock is held only for the pop/push, never while scoring.
#[derive(Debug, Default)]
pub struct ScratchPool {
    free: Mutex<Vec<ScoreScratch>>,
}

impl ScratchPool {
    /// An empty pool; buffers are created on demand and kept on `put`.
    pub fn new() -> Self {
        ScratchPool::default()
    }

    /// Pop a scratch, or create a fresh one if the pool is empty (also the
    /// fallback if the lock was poisoned by a panicking scorer thread —
    /// scratches hold no cross-query state, so a fresh one is always safe).
    pub fn take(&self) -> ScoreScratch {
        self.free
            .lock()
            .map(|mut v| v.pop().unwrap_or_default())
            .unwrap_or_default()
    }

    /// Return a scratch for the next `take` to reuse warm.
    pub fn put(&self, scratch: ScoreScratch) {
        if let Ok(mut v) = self.free.lock() {
            v.push(scratch);
        }
    }
}

thread_local! {
    /// Default scratch for the convenience APIs that don't thread one
    /// through: long-lived caller threads get cross-query buffer reuse for
    /// free. (Scoped shard threads die per query — pooled callers should
    /// pass a [`ScratchPool`] instead.)
    static THREAD_SCRATCH: RefCell<ScoreScratch> = RefCell::new(ScoreScratch::new());
}

/// Run `f` with the calling thread's default scratch. Falls back to a fresh
/// buffer if the thread-local is already borrowed (a filter callback that
/// recursively searches on the same thread must not panic the outer query).
pub(crate) fn with_thread_scratch<R>(f: impl FnOnce(&mut ScoreScratch) -> R) -> R {
    THREAD_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut ScoreScratch::new()),
    })
}

/// Bounded top-k selection under [`rank_hits`]: a max-heap of the k kept
/// hits whose top is the *worst* kept hit, so each candidate costs O(log k)
/// and non-contenders cost O(1) — versus sorting all `m` matches at
/// O(m log m). Because `rank_hits` totally orders distinct documents, the
/// selected set and its final sorted order are exactly the full sort's
/// first k entries — and that holds no matter how candidates are batched
/// into it, which is why the sharded inline path feeds **all** shards
/// through one `TopK` instead of selecting per shard and merging
/// (`pub(crate)` for exactly that caller).
pub(crate) struct TopK {
    k: usize,
    heap: BinaryHeap<WorstFirst>,
}

/// Heap wrapper ordering hits so the max-heap's top is the worst-ranked.
struct WorstFirst(Hit);

impl PartialEq for WorstFirst {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for WorstFirst {}

impl PartialOrd for WorstFirst {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for WorstFirst {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // rank_hits: Less = ranks first. Greater = ranks later = "larger"
        // here, so BinaryHeap::peek is the worst kept hit.
        rank_hits(&self.0, &other.0)
    }
}

impl TopK {
    pub(crate) fn new(k: usize) -> Self {
        TopK {
            k,
            // k can be usize::MAX-ish ("give me everything"); don't let a
            // huge request pre-allocate a huge heap.
            heap: BinaryHeap::with_capacity(k.min(1024)),
        }
    }

    #[inline]
    fn push(&mut self, hit: Hit) {
        if self.heap.len() < self.k {
            self.heap.push(WorstFirst(hit));
        } else if let Some(worst) = self.heap.peek() {
            if rank_hits(&hit, &worst.0) == std::cmp::Ordering::Less {
                self.heap.pop();
                self.heap.push(WorstFirst(hit));
            }
        }
    }

    /// The kept hits, best first.
    pub(crate) fn into_sorted_hits(self) -> Vec<Hit> {
        let mut hits: Vec<Hit> = self.heap.into_iter().map(|w| w.0).collect();
        hits.sort_by(rank_hits);
        hits
    }
}

/// The scoring kernel both search paths share: accumulate the resolved
/// terms' postings into `scratch`, then select the top `k` hits among
/// documents accepted by `filter`.
///
/// `terms` holds each distinct query term **already resolved against this
/// index's dictionary** (`None` = not in its vocabulary) with its query
/// multiplicity — the caller pays the one hash probe per term, this loop
/// pays none. `scorers` is parallel to `terms` (one [`TermScorer`] per
/// term, statistics already folded in — the caller decides whether those
/// are index-local or corpus-global). `to_global` maps the index's local
/// doc ids into the caller's id space (identity for an unsharded index);
/// `filter` sees mapped ids, as do the returned hits.
pub(crate) fn score_terms_into(
    index: &Index,
    terms: &[(Option<TermId>, usize)],
    scorers: &[TermScorer],
    k: usize,
    scratch: &mut ScoreScratch,
    to_global: impl Fn(DocId) -> DocId,
    filter: impl Fn(DocId) -> bool,
) -> Vec<Hit> {
    let mut top = TopK::new(k);
    score_terms_into_topk(index, terms, scorers, scratch, to_global, filter, &mut top);
    top.into_sorted_hits()
}

/// [`score_terms_into`] pushing its candidates into a caller-owned [`TopK`]
/// instead of selecting locally. Because [`rank_hits`] totally orders
/// distinct documents, feeding several indexes (the shards of a sharded
/// search) through one `TopK` yields exactly the hits that per-index
/// selection followed by a merge would — minus the per-index heaps, sorts,
/// and hit lists. The inline sharded path is the caller that cashes that
/// in.
pub(crate) fn score_terms_into_topk(
    index: &Index,
    terms: &[(Option<TermId>, usize)],
    scorers: &[TermScorer],
    scratch: &mut ScoreScratch,
    to_global: impl Fn(DocId) -> DocId,
    filter: impl Fn(DocId) -> bool,
    top: &mut TopK,
) {
    scratch.begin(index.num_docs());
    let lengths = index.doc_lengths();
    for ((tid, qtf), scorer) in terms.iter().zip(scorers) {
        // Unknown terms have no postings.
        let Some(tid) = *tid else {
            continue;
        };
        let postings = index.postings_of(tid);
        let qtf = *qtf as f64;
        // Two parallel flat slices: docs ascending, tfs matched by index.
        for (&doc, &weighted_tf) in postings.docs.iter().zip(postings.weighted_tfs) {
            let score = scorer.score(lengths[doc as usize], weighted_tf) * qtf;
            scratch.add(doc, score);
        }
    }

    for &doc in &scratch.touched {
        let global = to_global(doc);
        if !filter(global) {
            continue;
        }
        let slot = &scratch.acc[doc as usize];
        top.push(Hit {
            doc: global,
            score: slot.score,
            matched_terms: slot.matched as usize,
        });
    }
}

impl<'a> Searcher<'a> {
    /// New searcher with the given scoring function.
    pub fn new(index: &'a Index, scoring: ScoringFunction) -> Self {
        Searcher { index, scoring }
    }

    /// The underlying index.
    pub fn index(&self) -> &Index {
        self.index
    }

    /// Run `query`, returning up to `k` hits, best first. Documents must
    /// match at least one query term to appear. Ties break by ascending
    /// doc id for determinism.
    pub fn search(&self, query: &str, k: usize) -> Vec<Hit> {
        let terms = self.index.analyzer().tokenize(query);
        self.search_terms(&terms, k)
    }

    /// Run a query given pre-analyzed terms.
    pub fn search_terms(&self, terms: &[String], k: usize) -> Vec<Hit> {
        self.search_terms_where(terms, k, |_| true)
    }

    /// Run `query`, keeping only documents accepted by `filter`. The filter
    /// is applied before top-k selection, so a restrictive filter still
    /// yields up to `k` of *its* documents (used by the qunit engine to rank
    /// "instances of the identified type").
    pub fn search_where(&self, query: &str, k: usize, filter: impl Fn(DocId) -> bool) -> Vec<Hit> {
        let terms = self.index.analyzer().tokenize(query);
        self.search_terms_where(&terms, k, filter)
    }

    /// [`Searcher::search_where`] with pre-analyzed terms. Uses the calling
    /// thread's default [`ScoreScratch`].
    pub fn search_terms_where(
        &self,
        terms: &[String],
        k: usize,
        filter: impl Fn(DocId) -> bool,
    ) -> Vec<Hit> {
        with_thread_scratch(|scratch| self.search_terms_where_with(terms, k, filter, scratch))
    }

    /// [`Searcher::search_terms_where`] with a caller-owned scratch buffer
    /// (see [`ScoreScratch`] for the reuse rules) — batch drivers reuse one
    /// scratch across their whole workload.
    pub fn search_terms_where_with(
        &self,
        terms: &[String],
        k: usize,
        filter: impl Fn(DocId) -> bool,
        scratch: &mut ScoreScratch,
    ) -> Vec<Hit> {
        if k == 0 || terms.is_empty() {
            return Vec::new();
        }
        let deduped = dedup_terms(terms);
        // One dictionary probe per distinct term: the resolved id yields
        // both the postings (for the kernel) and the document frequency
        // (for the scorer) — the same statistics `TermStats::of` reads.
        let num_docs = self.index.num_docs();
        let avg_doc_length = self.index.avg_doc_length();
        let mut resolved = Vec::with_capacity(deduped.len());
        let mut scorers = Vec::with_capacity(deduped.len());
        for (term, qtf) in &deduped {
            let id = self.index.term_id(term);
            let doc_freq = id.map_or(0, |id| self.index.postings_of(id).len());
            resolved.push((id, *qtf));
            scorers.push(self.scoring.scorer(TermStats {
                num_docs,
                doc_freq,
                avg_doc_length,
            }));
        }
        score_terms_into(self.index, &resolved, &scorers, k, scratch, |d| d, filter)
    }

    /// Convenience: the single best hit, if any.
    pub fn top(&self, query: &str) -> Option<Hit> {
        self.search(query, 1).into_iter().next()
    }

    /// Score one specific document against a query (same accumulation as
    /// [`Searcher::search`], restricted to `doc`). Returns a zero-score hit
    /// when no query term matches the document.
    pub fn score_doc(&self, query: &str, doc: DocId) -> Hit {
        let terms = self.index.analyzer().tokenize(query);
        let mut score = 0.0;
        let mut matched_terms = 0;
        for (term, qtf) in dedup_terms(&terms) {
            // Resolve the postings view once per term; the doc probe is a
            // binary search over the flat doc-id slice.
            let postings = self.index.postings(term);
            if let Ok(i) = postings.docs.binary_search(&doc) {
                score += self
                    .scoring
                    .score_term(self.index, term, doc, postings.weighted_tfs[i])
                    * qtf as f64;
                matched_terms += 1;
            }
        }
        Hit {
            doc,
            score,
            matched_terms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::Document;
    use crate::index::IndexBuilder;

    fn movie_index() -> Index {
        let mut b = IndexBuilder::new();
        b.set_field_boost("title", 2.0);
        b.add(
            Document::new("star-wars")
                .field("title", "Star Wars")
                .field("body", "luke skywalker darth vader rebels empire"),
        );
        b.add(
            Document::new("star-trek")
                .field("title", "Star Trek")
                .field("body", "kirk spock enterprise federation"),
        );
        b.add(
            Document::new("oceans")
                .field("title", "Ocean's Eleven")
                .field("body", "george clooney brad pitt heist casino"),
        );
        b.build()
    }

    #[test]
    fn exact_title_wins() {
        let ix = movie_index();
        let s = Searcher::new(&ix, ScoringFunction::default());
        let hits = s.search("star wars", 10);
        assert_eq!(ix.external_id(hits[0].doc), Some("star-wars"));
        assert_eq!(hits[0].matched_terms, 2);
        // star trek shares one term
        assert_eq!(ix.external_id(hits[1].doc), Some("star-trek"));
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn body_terms_match_too() {
        let ix = movie_index();
        let s = Searcher::new(&ix, ScoringFunction::default());
        let top = s.top("george clooney").unwrap();
        assert_eq!(ix.external_id(top.doc), Some("oceans"));
    }

    #[test]
    fn k_truncates_and_orders_descending() {
        let ix = movie_index();
        let s = Searcher::new(&ix, ScoringFunction::default());
        let hits = s.search("star", 1);
        assert_eq!(hits.len(), 1);
        let all = s.search("star", 10);
        assert!(all.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn bounded_topk_equals_full_ranking_prefix() {
        let ix = movie_index();
        let s = Searcher::new(&ix, ScoringFunction::default());
        let all = s.search("star wars george", 100);
        for k in 1..=all.len() {
            assert_eq!(s.search("star wars george", k), all[..k], "k={k}");
        }
    }

    #[test]
    fn zero_k_and_empty_query() {
        let ix = movie_index();
        let s = Searcher::new(&ix, ScoringFunction::default());
        assert!(s.search("star", 0).is_empty());
        assert!(s.search("", 10).is_empty());
        assert!(s.search("the of", 10).is_empty()); // all stopwords
    }

    #[test]
    fn unmatched_query_returns_empty() {
        let ix = movie_index();
        let s = Searcher::new(&ix, ScoringFunction::default());
        assert!(s.search("zzzz qqqq", 10).is_empty());
    }

    #[test]
    fn explicit_scratch_reuse_matches_thread_local_path() {
        let ix = movie_index();
        let s = Searcher::new(&ix, ScoringFunction::default());
        let mut scratch = ScoreScratch::new();
        let terms = ix.analyzer().tokenize("star wars");
        let expected = s.search_terms(&terms, 10);
        // the same scratch serves many queries (and a different index size)
        for _ in 0..3 {
            let got = s.search_terms_where_with(&terms, 10, |_| true, &mut scratch);
            assert_eq!(got, expected);
        }
        let mut small = IndexBuilder::new();
        small.add(Document::new("x").field("body", "star"));
        let small = small.build();
        let s2 = Searcher::new(&small, ScoringFunction::default());
        let t2 = small.analyzer().tokenize("star");
        assert_eq!(
            s2.search_terms_where_with(&t2, 5, |_| true, &mut scratch),
            s2.search_terms(&t2, 5)
        );
    }

    #[test]
    fn epoch_wrap_resets_slots() {
        let ix = movie_index();
        let s = Searcher::new(&ix, ScoringFunction::default());
        let terms = ix.analyzer().tokenize("star wars");
        let expected = s.search_terms(&terms, 10);
        let mut scratch = ScoreScratch::new();
        // Force the wrap path: pretend 2^32 - 1 queries already ran.
        scratch.epoch = u32::MAX - 1;
        let a = s.search_terms_where_with(&terms, 10, |_| true, &mut scratch);
        // this query hits epoch == u32::MAX, the next one wraps
        let b = s.search_terms_where_with(&terms, 10, |_| true, &mut scratch);
        let c = s.search_terms_where_with(&terms, 10, |_| true, &mut scratch);
        assert_eq!(a, expected);
        assert_eq!(b, expected);
        assert_eq!(c, expected);
        // a ran at u32::MAX, b triggered the reset (epoch 1), c is epoch 2
        assert_eq!(scratch.epoch, 2);
    }

    #[test]
    fn scratch_pool_round_trips_buffers() {
        let pool = ScratchPool::new();
        let mut a = pool.take();
        a.begin(64); // warm it
        pool.put(a);
        let b = pool.take(); // the warm buffer comes back
        assert_eq!(b.acc.len(), 64);
        let c = pool.take(); // pool empty again → fresh
        assert_eq!(c.acc.len(), 0);
    }

    #[test]
    fn tfidf_also_ranks_exact_match_first() {
        let ix = movie_index();
        let s = Searcher::new(&ix, ScoringFunction::TfIdf);
        let hits = s.search("star wars", 10);
        assert_eq!(ix.external_id(hits[0].doc), Some("star-wars"));
    }

    #[test]
    fn repeated_query_terms_increase_weight() {
        let ix = movie_index();
        let s = Searcher::new(&ix, ScoringFunction::default());
        let once = s.search("star clooney", 10);
        let twice = s.search("star star clooney", 10);
        // doubling "star" should (weakly) promote the star documents
        let pos_once = once
            .iter()
            .position(|h| ix.external_id(h.doc) == Some("star-wars"))
            .unwrap();
        let pos_twice = twice
            .iter()
            .position(|h| ix.external_id(h.doc) == Some("star-wars"))
            .unwrap();
        assert!(pos_twice <= pos_once);
    }

    #[test]
    fn deterministic_tiebreak_by_doc_id() {
        let mut b = IndexBuilder::new();
        b.add(Document::new("a").field("body", "same text"));
        b.add(Document::new("b").field("body", "same text"));
        let ix = b.build();
        let s = Searcher::new(&ix, ScoringFunction::default());
        let hits = s.search("same", 10);
        assert_eq!(ix.external_id(hits[0].doc), Some("a"));
        assert_eq!(ix.external_id(hits[1].doc), Some("b"));
        // tie + k=1 keeps the lower doc id, same as the full ranking
        assert_eq!(s.search("same", 1), hits[..1]);
    }
}
