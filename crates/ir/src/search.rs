//! Top-k ranked retrieval over an [`Index`].

use crate::document::DocId;
use crate::index::Index;
use crate::score::ScoringFunction;
use std::collections::HashMap;

/// A ranked search hit.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// Internal document id (resolve with [`Index::external_id`]).
    pub doc: DocId,
    /// Accumulated relevance score.
    pub score: f64,
    /// How many distinct query terms matched the document.
    pub matched_terms: usize,
}

/// Executes queries against a borrowed index.
///
/// A `Searcher` is a stateless view (`&Index` + a copyable scoring config):
/// construct one per thread, or share one across threads — both are safe
/// and equivalent. Asserted `Send + Sync` below.
#[derive(Debug, Clone)]
pub struct Searcher<'a> {
    index: &'a Index,
    scoring: ScoringFunction,
}

const fn assert_send_sync<T: Send + Sync>() {}
const _: () = assert_send_sync::<Searcher<'static>>();

/// De-duplicate query terms in **first-occurrence order**, remembering
/// multiplicity (a repeated query term contributes proportionally).
///
/// The order matters: per-document scores are floating-point sums over the
/// query terms, and summing in `HashMap` iteration order made two
/// evaluations of the same query differ in the last ulp. Search results
/// must be bit-for-bit reproducible — the concurrent engine upstream
/// asserts batch ≡ sequential ≡ replay — so the term order has to be a
/// pure function of the query. Queries are a handful of terms, hence the
/// quadratic scan instead of a map.
pub(crate) fn dedup_terms(terms: &[String]) -> Vec<(&str, usize)> {
    let mut out: Vec<(&str, usize)> = Vec::with_capacity(terms.len());
    for t in terms {
        match out.iter_mut().find(|(s, _)| *s == t.as_str()) {
            Some((_, c)) => *c += 1,
            None => out.push((t.as_str(), 1)),
        }
    }
    out
}

/// The ranking order of hits: descending score, ties broken by ascending
/// doc id. Shared by the unsharded sort and the sharded per-shard sort +
/// top-k merge, so both paths order identical score sets identically.
pub(crate) fn rank_hits(a: &Hit, b: &Hit) -> std::cmp::Ordering {
    b.score
        .partial_cmp(&a.score)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then(a.doc.cmp(&b.doc))
}

impl<'a> Searcher<'a> {
    /// New searcher with the given scoring function.
    pub fn new(index: &'a Index, scoring: ScoringFunction) -> Self {
        Searcher { index, scoring }
    }

    /// The underlying index.
    pub fn index(&self) -> &Index {
        self.index
    }

    /// Run `query`, returning up to `k` hits, best first. Documents must
    /// match at least one query term to appear. Ties break by ascending
    /// doc id for determinism.
    pub fn search(&self, query: &str, k: usize) -> Vec<Hit> {
        let terms = self.index.analyzer().tokenize(query);
        self.search_terms(&terms, k)
    }

    /// Run a query given pre-analyzed terms.
    pub fn search_terms(&self, terms: &[String], k: usize) -> Vec<Hit> {
        self.search_terms_where(terms, k, |_| true)
    }

    /// Run `query`, keeping only documents accepted by `filter`. The filter
    /// is applied before top-k selection, so a restrictive filter still
    /// yields up to `k` of *its* documents (used by the qunit engine to rank
    /// "instances of the identified type").
    pub fn search_where(&self, query: &str, k: usize, filter: impl Fn(DocId) -> bool) -> Vec<Hit> {
        let terms = self.index.analyzer().tokenize(query);
        self.search_terms_where(&terms, k, filter)
    }

    /// [`Searcher::search_where`] with pre-analyzed terms.
    pub fn search_terms_where(
        &self,
        terms: &[String],
        k: usize,
        filter: impl Fn(DocId) -> bool,
    ) -> Vec<Hit> {
        if k == 0 || terms.is_empty() {
            return Vec::new();
        }
        // Accumulate scores document-at-a-time across postings lists.
        let mut acc: HashMap<DocId, (f64, usize)> = HashMap::new();
        for (term, qtf) in dedup_terms(terms) {
            for p in self.index.postings(term) {
                let s = self
                    .scoring
                    .score_term(self.index, term, p.doc, p.weighted_tf)
                    * qtf as f64;
                let e = acc.entry(p.doc).or_insert((0.0, 0));
                e.0 += s;
                e.1 += 1;
            }
        }
        let mut hits: Vec<Hit> = acc
            .into_iter()
            .filter(|(doc, _)| filter(*doc))
            .map(|(doc, (score, matched_terms))| Hit {
                doc,
                score,
                matched_terms,
            })
            .collect();
        hits.sort_by(rank_hits);
        hits.truncate(k);
        hits
    }

    /// Convenience: the single best hit, if any.
    pub fn top(&self, query: &str) -> Option<Hit> {
        self.search(query, 1).into_iter().next()
    }

    /// Score one specific document against a query (same accumulation as
    /// [`Searcher::search`], restricted to `doc`). Returns a zero-score hit
    /// when no query term matches the document.
    pub fn score_doc(&self, query: &str, doc: DocId) -> Hit {
        let terms = self.index.analyzer().tokenize(query);
        let mut score = 0.0;
        let mut matched_terms = 0;
        for (term, qtf) in dedup_terms(&terms) {
            if let Ok(i) = self
                .index
                .postings(term)
                .binary_search_by(|p| p.doc.cmp(&doc))
            {
                let p = self.index.postings(term)[i];
                score += self
                    .scoring
                    .score_term(self.index, term, doc, p.weighted_tf)
                    * qtf as f64;
                matched_terms += 1;
            }
        }
        Hit {
            doc,
            score,
            matched_terms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::Document;
    use crate::index::IndexBuilder;

    fn movie_index() -> Index {
        let mut b = IndexBuilder::new();
        b.set_field_boost("title", 2.0);
        b.add(
            Document::new("star-wars")
                .field("title", "Star Wars")
                .field("body", "luke skywalker darth vader rebels empire"),
        );
        b.add(
            Document::new("star-trek")
                .field("title", "Star Trek")
                .field("body", "kirk spock enterprise federation"),
        );
        b.add(
            Document::new("oceans")
                .field("title", "Ocean's Eleven")
                .field("body", "george clooney brad pitt heist casino"),
        );
        b.build()
    }

    #[test]
    fn exact_title_wins() {
        let ix = movie_index();
        let s = Searcher::new(&ix, ScoringFunction::default());
        let hits = s.search("star wars", 10);
        assert_eq!(ix.external_id(hits[0].doc), Some("star-wars"));
        assert_eq!(hits[0].matched_terms, 2);
        // star trek shares one term
        assert_eq!(ix.external_id(hits[1].doc), Some("star-trek"));
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn body_terms_match_too() {
        let ix = movie_index();
        let s = Searcher::new(&ix, ScoringFunction::default());
        let top = s.top("george clooney").unwrap();
        assert_eq!(ix.external_id(top.doc), Some("oceans"));
    }

    #[test]
    fn k_truncates_and_orders_descending() {
        let ix = movie_index();
        let s = Searcher::new(&ix, ScoringFunction::default());
        let hits = s.search("star", 1);
        assert_eq!(hits.len(), 1);
        let all = s.search("star", 10);
        assert!(all.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn zero_k_and_empty_query() {
        let ix = movie_index();
        let s = Searcher::new(&ix, ScoringFunction::default());
        assert!(s.search("star", 0).is_empty());
        assert!(s.search("", 10).is_empty());
        assert!(s.search("the of", 10).is_empty()); // all stopwords
    }

    #[test]
    fn unmatched_query_returns_empty() {
        let ix = movie_index();
        let s = Searcher::new(&ix, ScoringFunction::default());
        assert!(s.search("zzzz qqqq", 10).is_empty());
    }

    #[test]
    fn tfidf_also_ranks_exact_match_first() {
        let ix = movie_index();
        let s = Searcher::new(&ix, ScoringFunction::TfIdf);
        let hits = s.search("star wars", 10);
        assert_eq!(ix.external_id(hits[0].doc), Some("star-wars"));
    }

    #[test]
    fn repeated_query_terms_increase_weight() {
        let ix = movie_index();
        let s = Searcher::new(&ix, ScoringFunction::default());
        let once = s.search("star clooney", 10);
        let twice = s.search("star star clooney", 10);
        // doubling "star" should (weakly) promote the star documents
        let pos_once = once
            .iter()
            .position(|h| ix.external_id(h.doc) == Some("star-wars"))
            .unwrap();
        let pos_twice = twice
            .iter()
            .position(|h| ix.external_id(h.doc) == Some("star-wars"))
            .unwrap();
        assert!(pos_twice <= pos_once);
    }

    #[test]
    fn deterministic_tiebreak_by_doc_id() {
        let mut b = IndexBuilder::new();
        b.add(Document::new("a").field("body", "same text"));
        b.add(Document::new("b").field("body", "same text"));
        let ix = b.build();
        let s = Searcher::new(&ix, ScoringFunction::default());
        let hits = s.search("same", 10);
        assert_eq!(ix.external_id(hits[0].doc), Some("a"));
        assert_eq!(ix.external_id(hits[1].doc), Some("b"));
    }
}
