//! Top-k ranked retrieval over an [`Index`]: the flat scoring kernel.
//!
//! One query runs in three dense passes, shared verbatim by the unsharded
//! [`Searcher`] and the per-shard loop of [`crate::ShardedSearcher`]:
//!
//! 1. **Resolve** each distinct query term through the dictionary once
//!    ([`Index::term_id`]) and fold its corpus statistics into a
//!    [`TermScorer`] (the IDF `ln()` is paid here, not per posting), plus a
//!    per-term **score upper bound** ([`TermScorer::max_score`] × query
//!    multiplicity). Terms are then sorted by bound, descending (ties by
//!    first occurrence in the query) — this bound order is the canonical
//!    accumulation sequence.
//! 2. **Accumulate** over each term's CSR postings slices into a dense
//!    [`ScoreScratch`]: `Vec`-indexed score/matched-count slots with epoch
//!    tags, so the buffer is reused across queries without clearing. Once
//!    the running top-k threshold strictly exceeds the cumulative bound of
//!    the remaining tail terms, the kernel stops admitting **new**
//!    documents (MaxScore early termination): tail terms only update
//!    already-touched candidates, either by an epoch-checked walk or by
//!    binary-searching each candidate in the postings, whichever is
//!    cheaper.
//! 3. **Select** the top `k` with a bounded heap ordered by `rank_hits`
//!    instead of sorting every matched document.
//!
//! # Kernel tiers
//!
//! Three tiers run the same query ([`KernelTier`]), strongest first:
//!
//! - **Block-max** (the default): document-at-a-time traversal over the
//!   frozen per-block bound lanes (`BlockLanes` in `crate::index`). The
//!   essential prefix of the bound order advances with skip-to-geq cursors
//!   over block boundaries; non-essential terms are probed only for
//!   already-admitted candidates; a candidate is scored only when the sum
//!   of its current block maxima (plus the non-essential suffix) can beat
//!   the running top-k threshold θ̂, and whole runs of documents are
//!   skipped — without decoding their blocks — when it cannot.
//! - **MaxScore**: term-at-a-time accumulation that stops admitting new
//!   documents once θ̂ strictly exceeds the remaining tail-bound suffix.
//! - **Exhaustive**: walk every posting (the reference kernel).
//!
//! # The pruning invariant
//!
//! Every tier's output is **bit-identical** to the exhaustive kernel's.
//! All tiers score a document by the same bound-descending term order, so
//! every surviving document's score is the same floating-point sum in the
//! same sequence; a document is only skipped when its best possible score
//! (the margin-inflated bound suffix, or the block-max upper bound) is
//! *strictly* below the threshold, so it could never have displaced a kept
//! hit even on the doc-id tiebreak. The bounds are pure functions of
//! corpus-global statistics and the query, hence identical at every shard
//! count, codec, and dispatch mode. Property-tested against a naive
//! reference in `tests/prop_ir.rs` and held by the CI determinism gate,
//! which diffs block-max, forced-MaxScore, and forced-exhaustive
//! transcripts against one another.
//!
//! Mid-kernel cooperative cancellation: when a `KernelOpts::cancel`
//! probe is supplied, the kernel polls it every [`CANCEL_POSTING_BUDGET`]
//! postings accumulated — a deterministic fire schedule (wall clock only
//! decides whether a fired probe trips, never where it fires).

use crate::document::DocId;
use crate::index::{BlockLanes, Index, PostingsBuf, TermId};
use crate::score::{ScoringFunction, TermScorer, TermStats};
use std::cell::RefCell;
use std::collections::BinaryHeap;
use std::sync::Mutex;

/// A ranked search hit.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// Internal document id (resolve with [`Index::external_id`]).
    pub doc: DocId,
    /// Accumulated relevance score.
    pub score: f64,
    /// How many distinct query terms matched the document.
    pub matched_terms: usize,
}

/// The scoring kernel was stopped by its cooperative cancel probe before
/// finishing. No partial results are returned; the engine maps this to its
/// deadline error and never caches it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("scoring kernel cancelled by its cooperative probe")
    }
}

impl std::error::Error for Cancelled {}

/// How many postings the kernel accumulates between two polls of the
/// cooperative cancel probe. Fixed, so the probe's fire points are a
/// deterministic function of the query and index — only whether a fired
/// probe *trips* depends on the wall clock. Bounds the worst-case deadline
/// overrun to one budget's worth of postings instead of a whole phase.
pub const CANCEL_POSTING_BUDGET: usize = 4096;

/// Which scoring kernel runs a query. Every tier returns bit-identical
/// hits (see the module docs); the tiers differ only in how many postings
/// they touch. Forced via `QUNITS_FORCE_EXHAUSTIVE` /
/// `QUNITS_FORCE_MAXSCORE` / `QUNITS_FORCE_BLOCKMAX` upstream, mostly so
/// the CI determinism gate can diff all three.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelTier {
    /// Block-max document-at-a-time skipping over the frozen block lanes
    /// (the production default — walks the fewest postings).
    #[default]
    BlockMax,
    /// MaxScore term pruning: whole tail terms stop admitting new
    /// documents, but surviving lists are walked in full.
    MaxScore,
    /// Walk every posting of every query term (the reference kernel).
    Exhaustive,
}

/// Per-call kernel switches, bundled so the signatures stay stable.
#[derive(Clone, Copy, Default)]
pub(crate) struct KernelOpts<'a> {
    /// Which kernel tier accumulates (see [`KernelTier`]).
    pub tier: KernelTier,
    /// Polled every [`CANCEL_POSTING_BUDGET`] postings; returning `true`
    /// aborts the kernel with [`Cancelled`]. `None` skips the bookkeeping.
    pub cancel: Option<&'a dyn Fn() -> bool>,
}

/// Executes queries against a borrowed index.
///
/// A `Searcher` is a stateless view (`&Index` + a copyable scoring config):
/// construct one per thread, or share one across threads — both are safe
/// and equivalent. Asserted `Send + Sync` below. Mutable query state lives
/// in a [`ScoreScratch`] — thread-local by default, caller-owned via
/// [`Searcher::search_terms_where_with`].
#[derive(Debug, Clone)]
pub struct Searcher<'a> {
    index: &'a Index,
    scoring: ScoringFunction,
    tier: KernelTier,
}

const fn assert_send_sync<T: Send + Sync>() {}
const _: () = assert_send_sync::<Searcher<'static>>();
const _: () = assert_send_sync::<ScratchPool>();

/// De-duplicate query terms in **first-occurrence order**, remembering
/// multiplicity (a repeated query term contributes proportionally).
///
/// First-occurrence position is the tiebreak when two terms have equal
/// score bounds (see [`bound_order`]), so the full accumulation order —
/// and with it every floating-point sum — stays a pure function of the
/// query text. Queries are a handful of terms, hence the quadratic scan
/// instead of a map.
pub(crate) fn dedup_terms(terms: &[String]) -> Vec<(&str, usize)> {
    let mut out: Vec<(&str, usize)> = Vec::with_capacity(terms.len());
    for t in terms {
        match out.iter_mut().find(|(s, _)| *s == t.as_str()) {
            Some((_, c)) => *c += 1,
            None => out.push((t.as_str(), 1)),
        }
    }
    out
}

/// The canonical accumulation order: indices into `bounds` sorted by bound
/// **descending**, ties broken by ascending position (= first occurrence
/// in the query, via [`dedup_terms`]). Every scoring path — pruned,
/// exhaustive, sharded, and the single-document [`Searcher::score_doc`] —
/// permutes its terms through this order, so per-document floating-point
/// sums are identical everywhere. The bounds themselves derive from
/// corpus-global statistics, making the order shard-count invariant.
pub(crate) fn bound_order(bounds: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..bounds.len()).collect();
    order.sort_by(|&a, &b| {
        bounds[b]
            .partial_cmp(&bounds[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    order
}

/// The ranking order of hits: descending score, ties broken by ascending
/// doc id. Shared by the unsharded selection and the sharded per-shard
/// selection + top-k merge, so both paths order identical score sets
/// identically. Total on distinct documents — the doc-id tiebreak means no
/// two hits ever compare `Equal` — which is what makes bounded top-k
/// selection equivalent to sort-everything-then-truncate.
pub(crate) fn rank_hits(a: &Hit, b: &Hit) -> std::cmp::Ordering {
    b.score
        .partial_cmp(&a.score)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then(a.doc.cmp(&b.doc))
}

/// One document's accumulator slot (see [`ScoreScratch`]). 16 bytes, so a
/// doc's score, match count, and liveness tag share a cache line touch.
#[derive(Debug, Clone, Copy, Default)]
struct DocAcc {
    score: f64,
    matched: u32,
    /// Slot is live iff this equals the scratch's current epoch.
    epoch: u32,
}

/// Reusable dense accumulation state for the scoring kernel.
///
/// Holds one `DocAcc` slot per document, indexed directly by local
/// [`DocId`] — no hashing — plus the list of documents touched by the
/// current query. Instead of zeroing `num_docs` slots per query, each query
/// bumps an **epoch**: a slot whose tag differs from the current epoch is
/// logically empty and is re-initialized on first touch. On the (once per
/// 4 billion queries) epoch wrap every tag is reset for real.
///
/// # Reuse rules
///
/// - A scratch may be reused across queries, indexes, and shards of any
///   size (it grows to the largest `num_docs` it has served, and never
///   shrinks).
/// - It is plain mutable state: one query at a time per scratch. Share
///   scratches across threads through a [`ScratchPool`], not `&mut`.
/// - Droppable at any time; it caches no index content, only capacity.
#[derive(Debug, Default)]
pub struct ScoreScratch {
    acc: Vec<DocAcc>,
    touched: Vec<DocId>,
    epoch: u32,
    /// Workspace for the k-th-best-partial threshold probe.
    thresh: Vec<f64>,
    /// Cumulative postings accumulated (full walks, pruned probes, and
    /// block-max cursor steps alike) across this scratch's lifetime. Never
    /// reset by `begin` — callers diff before/after a query to measure one
    /// kernel run.
    postings_visited: u64,
    /// Blocks the block-max kernel bypassed via the bound lanes without
    /// loading (or, compressed, decoding) them. Cumulative like
    /// `postings_visited`.
    blocks_skipped: u64,
    /// Blocks the block-max kernel actually loaded and walked. Cumulative.
    blocks_scored: u64,
    /// Per-term decode buffer for [`crate::PostingsCodec::DeltaVarint`]
    /// indexes; untouched (and unallocated) under the flat codec. Lives in
    /// the scratch so one allocation serves a whole workload.
    decode: PostingsBuf,
    /// Per-cursor block decode buffers for the block-max kernel (one per
    /// query term under the compressed codec; unallocated under flat).
    block_bufs: Vec<PostingsBuf>,
}

impl ScoreScratch {
    /// An empty scratch; it sizes itself to each query's index.
    pub fn new() -> Self {
        ScoreScratch::default()
    }

    /// Cumulative count of postings accumulated through this scratch —
    /// full-walk postings, pruned-mode probes, and block-max cursor steps
    /// all count one each. Monotone across queries; diff two readings to
    /// meter one search.
    pub fn postings_visited(&self) -> u64 {
        self.postings_visited
    }

    /// Cumulative count of blocks the block-max kernel bypassed through
    /// the bound lanes without loading them (a skipped block is never
    /// varint-decoded). Monotone; diff two readings to meter one search.
    pub fn blocks_skipped(&self) -> u64 {
        self.blocks_skipped
    }

    /// Cumulative count of blocks the block-max kernel loaded and walked.
    /// Monotone; diff two readings to meter one search.
    pub fn blocks_scored(&self) -> u64 {
        self.blocks_scored
    }

    /// Start a query over `num_docs` documents: grow if needed, invalidate
    /// every slot by bumping the epoch, forget the touched list.
    fn begin(&mut self, num_docs: usize) {
        if self.acc.len() < num_docs {
            self.acc.resize(num_docs, DocAcc::default());
        }
        if self.epoch == u32::MAX {
            // Wrap: tags from 4B queries ago could collide with a fresh
            // epoch, so pay one full reset and restart the cycle.
            self.acc.fill(DocAcc::default());
            self.epoch = 0;
        }
        self.epoch += 1;
        self.touched.clear();
    }

    /// Add one posting's contribution to `doc` (first touch initializes).
    #[inline]
    fn add(&mut self, doc: DocId, score: f64) {
        let slot = &mut self.acc[doc as usize];
        if slot.epoch == self.epoch {
            slot.score += score;
            slot.matched += 1;
        } else {
            *slot = DocAcc {
                score,
                matched: 1,
                epoch: self.epoch,
            };
            self.touched.push(doc);
        }
    }

    /// The k-th best partial score among the documents touched so far —
    /// a lower bound on the final top-k threshold (partials only grow),
    /// valid only for unfiltered queries. Caller guarantees
    /// `touched.len() >= k >= 1`.
    fn kth_best_partial(&mut self, k: usize) -> f64 {
        let ScoreScratch {
            acc,
            touched,
            thresh,
            ..
        } = self;
        thresh.clear();
        thresh.extend(touched.iter().map(|&d| acc[d as usize].score));
        let (_, kth, _) = thresh.select_nth_unstable_by(k - 1, |a, b| {
            b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal)
        });
        *kth
    }
}

/// Hard cap on [`ScratchPool`]'s free list. A one-time burst of pooled
/// threads used to pin `threads × num_docs`-sized buffers forever; now
/// `put` drops returns beyond the cap and steady-state memory is bounded
/// by the cap, not the historical peak.
const MAX_POOLED_SCRATCHES: usize = 32;

/// A lock-protected free list of [`ScoreScratch`] buffers for callers whose
/// worker threads are too short-lived to amortize a thread-local (the
/// sharded searcher spawns scoped threads per query; an engine owning a
/// pool lets those threads inherit warm buffers instead of reallocating).
///
/// `take` pops a warm scratch (or makes a cold one), `put` returns it —
/// keeping at most `MAX_POOLED_SCRATCHES` buffers. The lock is held only
/// for the pop/push, never while scoring.
#[derive(Debug, Default)]
pub struct ScratchPool {
    free: Mutex<Vec<ScoreScratch>>,
}

impl ScratchPool {
    /// An empty pool; buffers are created on demand and kept on `put`.
    pub fn new() -> Self {
        ScratchPool::default()
    }

    /// Pop a scratch, or create a fresh one if the pool is empty (also the
    /// fallback if the lock was poisoned by a panicking scorer thread —
    /// scratches hold no cross-query state, so a fresh one is always safe).
    pub fn take(&self) -> ScoreScratch {
        self.free
            .lock()
            .map(|mut v| v.pop().unwrap_or_default())
            .unwrap_or_default()
    }

    /// Return a scratch for the next `take` to reuse warm. Dropped instead
    /// if the free list is already at `MAX_POOLED_SCRATCHES`.
    pub fn put(&self, scratch: ScoreScratch) {
        if let Ok(mut v) = self.free.lock() {
            if v.len() < MAX_POOLED_SCRATCHES {
                v.push(scratch);
            }
        }
    }
}

thread_local! {
    /// Default scratch for the convenience APIs that don't thread one
    /// through: long-lived caller threads get cross-query buffer reuse for
    /// free. (Scoped shard threads die per query — pooled callers should
    /// pass a [`ScratchPool`] instead.)
    static THREAD_SCRATCH: RefCell<ScoreScratch> = RefCell::new(ScoreScratch::new());
}

/// Run `f` with the calling thread's default scratch. Falls back to a fresh
/// buffer if the thread-local is already borrowed (a filter callback that
/// recursively searches on the same thread must not panic the outer query).
pub(crate) fn with_thread_scratch<R>(f: impl FnOnce(&mut ScoreScratch) -> R) -> R {
    THREAD_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut ScoreScratch::new()),
    })
}

/// Bounded top-k selection under [`rank_hits`]: a max-heap of the k kept
/// hits whose top is the *worst* kept hit, so each candidate costs O(log k)
/// and non-contenders cost O(1) — versus sorting all `m` matches at
/// O(m log m). Because `rank_hits` totally orders distinct documents, the
/// selected set and its final sorted order are exactly the full sort's
/// first k entries — and that holds no matter how candidates are batched
/// into it, which is why the sharded inline path feeds **all** shards
/// through one `TopK` instead of selecting per shard and merging
/// (`pub(crate)` for exactly that caller).
pub(crate) struct TopK {
    k: usize,
    heap: BinaryHeap<WorstFirst>,
}

/// Heap wrapper ordering hits so the max-heap's top is the worst-ranked.
struct WorstFirst(Hit);

impl PartialEq for WorstFirst {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for WorstFirst {}

impl PartialOrd for WorstFirst {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for WorstFirst {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // rank_hits: Less = ranks first. Greater = ranks later = "larger"
        // here, so BinaryHeap::peek is the worst kept hit.
        rank_hits(&self.0, &other.0)
    }
}

impl TopK {
    pub(crate) fn new(k: usize) -> Self {
        TopK {
            k,
            // k can be usize::MAX-ish ("give me everything"); don't let a
            // huge request pre-allocate a huge heap.
            heap: BinaryHeap::with_capacity(k.min(1024)),
        }
    }

    #[inline]
    fn push(&mut self, hit: Hit) {
        if self.heap.len() < self.k {
            self.heap.push(WorstFirst(hit));
        } else if let Some(worst) = self.heap.peek() {
            if rank_hits(&hit, &worst.0) == std::cmp::Ordering::Less {
                self.heap.pop();
                self.heap.push(WorstFirst(hit));
            }
        }
    }

    /// The worst kept score once the heap actually holds `k` hits — the
    /// current top-k admission threshold. `None` while underfull (every
    /// candidate is still admitted unconditionally). Only the sharded
    /// inline path sees a non-empty heap during accumulation; within one
    /// kernel run selection happens after accumulation, so this stays
    /// `None` there and pruning leans on the partial threshold instead.
    pub(crate) fn full_threshold(&self) -> Option<f64> {
        if self.k > 0 && self.heap.len() >= self.k {
            self.heap.peek().map(|w| w.0.score)
        } else {
            None
        }
    }

    /// The kept hits, best first.
    pub(crate) fn into_sorted_hits(self) -> Vec<Hit> {
        let mut hits: Vec<Hit> = self.heap.into_iter().map(|w| w.0).collect();
        hits.sort_by(rank_hits);
        hits
    }
}

/// The best lower bound available on the final top-k threshold, or `None`
/// when nothing bounds it yet. Combines the heap threshold (valid always:
/// kept scores only improve, and in the sharded inline path earlier
/// shards' docs are distinct from later shards') with the k-th best
/// partial among touched documents (valid only unfiltered — a selective
/// filter could make the true filtered threshold lower than any partial).
fn current_threshold(top: &TopK, scratch: &mut ScoreScratch, unfiltered: bool) -> Option<f64> {
    let heap = top.full_threshold();
    let partial = if unfiltered && top.k > 0 && scratch.touched.len() >= top.k {
        Some(scratch.kth_best_partial(top.k))
    } else {
        None
    };
    match (heap, partial) {
        (Some(h), Some(p)) => Some(h.max(p)),
        (h, p) => h.or(p),
    }
}

/// Count one accumulated posting chunk against the cooperative cancel
/// budget; polls the probe each time the budget drains. `usize::MAX`
/// means "no probe installed" and skips all bookkeeping.
#[inline]
fn spend_budget(
    remaining: &mut usize,
    take: usize,
    cancel: Option<&dyn Fn() -> bool>,
) -> Result<(), Cancelled> {
    if *remaining != usize::MAX {
        *remaining -= take;
        if *remaining == 0 {
            // `kernel.checkpoint` failpoint: shares the cooperative
            // checkpoint cadence, so an injected trip aborts at exactly
            // the sites a real deadline could.
            if crate::fault::check(crate::fault::site::KERNEL_CHECKPOINT).is_err()
                || cancel.is_some_and(|c| c())
            {
                return Err(Cancelled);
            }
            *remaining = CANCEL_POSTING_BUDGET;
        }
    }
    Ok(())
}

/// Work counters local to one block-max kernel run; flushed into the
/// [`ScoreScratch`] meters when the run ends (on every exit path, so a
/// cancelled kernel still reports what it walked).
#[derive(Default)]
struct BlockMeter {
    /// In-block cursor steps (each counts one posting visited).
    steps: u64,
    /// Blocks bypassed via the bound lanes without loading.
    skipped: u64,
    /// Blocks loaded (and, compressed, decoded). Each load also counts one
    /// posting visited — the landing posting the cursor reads first; steps
    /// cover the rest — so a fully-walked block costs exactly its length,
    /// the same accounting as the term-at-a-time kernels.
    scored: u64,
    /// Work counted since the last cancel-budget drain.
    pending: usize,
}

impl BlockMeter {
    /// Charge the work counted since the last drain against the cancel
    /// budget — the block-max analogue of the chunked [`spend_budget`]
    /// calls in the term-at-a-time paths. Called at block-granular sites
    /// (once per document-at-a-time step), so poll points stay a
    /// deterministic function of the query and index.
    fn drain(
        &mut self,
        remaining: &mut usize,
        cancel: Option<&dyn Fn() -> bool>,
    ) -> Result<(), Cancelled> {
        while self.pending > 0 {
            let take = (*remaining).min(self.pending);
            self.pending -= take;
            spend_budget(remaining, take, cancel)?;
        }
        Ok(())
    }
}

/// A document-at-a-time read head over one query term's postings, skipping
/// at block granularity through the frozen [`BlockLanes`].
///
/// The cursor is **lazy**: positioning on a block costs nothing (the
/// candidate doc id is answered from the `first_docs` lane), and the
/// block's postings are only loaded — for the compressed codec, decoded
/// into the cursor's own buffer — when the cursor actually steps into or
/// probes the block. A block the traversal bounds away is bypassed through
/// the `last_docs` lane and never touched.
struct BlockCursor<'a> {
    tid: TermId,
    /// The term's whole CSR row under the flat codec (zero-copy); `None`
    /// under the compressed codec (blocks decode into `buf` on load).
    flat: Option<(&'a [DocId], &'a [f64])>,
    lanes: &'a BlockLanes,
    /// The term's global block range in the lanes.
    blk_lo: usize,
    blk_hi: usize,
    /// Term document frequency (the CSR row length).
    df: usize,
    /// Currently positioned block (global index); `blk_hi` = exhausted.
    cur: usize,
    /// Position within the current block.
    pos: usize,
    /// Postings in the current block.
    len: usize,
    /// Whether the current block's postings are loaded (always true once
    /// `pos > 0`).
    loaded: bool,
    /// Score upper bound of the current block: the scorer's analytic peak
    /// at the block's max weighted tf, × query multiplicity.
    bound: f64,
    /// Decode target for the current block (compressed codec only).
    buf: PostingsBuf,
    scorer: TermScorer,
    qtf: f64,
}

impl<'a> BlockCursor<'a> {
    fn new(index: &'a Index, tid: TermId, scorer: TermScorer, qtf: f64, buf: PostingsBuf) -> Self {
        let lanes = index.raw_blocks();
        let range = lanes.term_blocks(tid as usize);
        let mut cursor = BlockCursor {
            tid,
            flat: match index.postings_codec() {
                crate::index::PostingsCodec::Flat => {
                    let row = index.postings_of(tid);
                    Some((row.docs, row.weighted_tfs))
                }
                crate::index::PostingsCodec::DeltaVarint => None,
            },
            lanes,
            blk_lo: range.start,
            blk_hi: range.end,
            df: index.doc_freq_of(tid),
            cur: range.start,
            pos: 0,
            len: 0,
            loaded: false,
            bound: 0.0,
            buf,
            scorer,
            qtf,
        };
        if !cursor.exhausted() {
            cursor.position(range.start);
        }
        cursor
    }

    #[inline]
    fn exhausted(&self) -> bool {
        self.cur == self.blk_hi
    }

    /// Last doc id of the current block (the skip lane).
    #[inline]
    fn last_doc(&self) -> DocId {
        self.lanes.last_docs[self.cur]
    }

    /// Point at the head of block `blk` without loading its postings.
    fn position(&mut self, blk: usize) {
        let bs = self.lanes.block_size;
        self.cur = blk;
        self.pos = 0;
        self.loaded = false;
        self.len = (self.df - (blk - self.blk_lo) * bs).min(bs);
        self.bound = self.scorer.max_score(self.lanes.max_tfs[blk]) * self.qtf;
    }

    /// Load the current block's postings (decode under the compressed
    /// codec). The one place `blocks_scored` counts.
    fn ensure_loaded(&mut self, index: &'a Index, meter: &mut BlockMeter) {
        if !self.loaded {
            if self.flat.is_none() {
                index.block_postings_with(self.tid, self.cur, &mut self.buf);
            }
            self.loaded = true;
            meter.scored += 1;
            meter.pending += 1;
        }
    }

    /// Doc id under the read head. Answered from the `first_docs` lane
    /// while the block is unloaded (the head of a block is its first doc).
    #[inline]
    fn doc(&self) -> DocId {
        if !self.loaded {
            debug_assert_eq!(self.pos, 0);
            return self.lanes.first_docs[self.cur];
        }
        match self.flat {
            Some((docs, _)) => docs[(self.cur - self.blk_lo) * self.lanes.block_size + self.pos],
            None => self.buf.docs[self.pos],
        }
    }

    /// Weighted tf under the read head (requires a loaded block).
    #[inline]
    fn wtf(&self) -> f64 {
        match self.flat {
            Some((_, tfs)) => tfs[(self.cur - self.blk_lo) * self.lanes.block_size + self.pos],
            None => self.buf.tfs[self.pos],
        }
    }

    /// The current block's doc ids (requires a loaded block).
    #[inline]
    fn block_docs(&self) -> &[DocId] {
        match self.flat {
            Some((docs, _)) => {
                let start = (self.cur - self.blk_lo) * self.lanes.block_size;
                &docs[start..start + self.len]
            }
            None => &self.buf.docs[..self.len],
        }
    }

    /// Advance to the first posting whose doc id is **not** `too_small`,
    /// bypassing whole blocks through the `last_docs` lane. `too_small`
    /// must hold on a prefix of ascending doc ids (`d < t` for seek-geq,
    /// `d <= t` for seek-strictly-past). Returns `false` when the term is
    /// exhausted. Bypassed blocks are never loaded; an in-block seek is a
    /// binary search over the block's ascending doc ids and counts **one**
    /// posting visit per landing — mirroring the MaxScore kernel's
    /// candidate-driven probe accounting ([`prune_accumulate`]), so a
    /// one-step-at-a-time walk still costs exactly the block length (the
    /// load plus `len − 1` landings) while a far probe costs one.
    fn advance_while(
        &mut self,
        index: &'a Index,
        too_small: impl Fn(DocId) -> bool,
        meter: &mut BlockMeter,
    ) -> bool {
        if self.exhausted() {
            return false;
        }
        if too_small(self.last_doc()) {
            // The rest of this block is too small: jump through the lane.
            // `partition_point` over the ascending last-doc lane finds the
            // first later block that can contain the target.
            if !self.loaded {
                meter.skipped += 1;
            }
            let rel =
                self.lanes.last_docs[self.cur + 1..self.blk_hi].partition_point(|&d| too_small(d));
            meter.skipped += rel as u64;
            let next = self.cur + 1 + rel;
            if next == self.blk_hi {
                self.cur = self.blk_hi;
                return false;
            }
            self.position(next);
        }
        // The target is inside the current block (its last doc is not too
        // small), so this seek cannot run off the end.
        if too_small(self.doc()) {
            self.ensure_loaded(index, meter);
            let rel = self.block_docs()[self.pos + 1..].partition_point(|&x| too_small(x));
            self.pos += 1 + rel;
            meter.steps += 1;
            meter.pending += 1;
        }
        true
    }
}

/// The block-max document-at-a-time kernel ([`KernelTier::BlockMax`]).
///
/// Terms arrive permuted into bound order (like every kernel). The prefix
/// `terms[..p]` is *essential*: a document matching none of them has upper
/// bound at most `suffix[p]`, which the running threshold θ̂ already beats
/// (p only shrinks as θ̂ grows — the exact MaxScore engagement rule).
/// Essential cursors advance document-at-a-time; their minimum current doc
/// is the next candidate `d`, upper-bounded by `suffix[p]` plus the block
/// bounds of the essential cursors sitting on `d`. If the bound cannot
/// strictly beat θ̂, every document up to the earliest block end (capped by
/// the next essential doc) is skipped in one lane jump; otherwise `d` is
/// scored across **all** terms in bound order — the same float sum, in the
/// same sequence, as the exhaustive kernel — and pushed into `top`
/// directly (candidates arrive in ascending doc order, and [`TopK`]
/// selection is push-order independent, so the final hits are identical).
#[allow(clippy::too_many_arguments)]
fn block_max_accumulate(
    index: &Index,
    terms: &[(Option<TermId>, usize)],
    scorers: &[TermScorer],
    bounds: &[f64],
    scratch: &mut ScoreScratch,
    to_global: &dyn Fn(DocId) -> DocId,
    filter: Option<&dyn Fn(DocId) -> bool>,
    cancel: Option<&dyn Fn() -> bool>,
    top: &mut TopK,
) -> Result<(), Cancelled> {
    // Same reverse-summed suffix lane as the MaxScore path: suffix[i] is
    // the best score a document matching only terms[i..] could reach.
    let mut suffix = vec![0.0f64; terms.len() + 1];
    for i in (0..terms.len()).rev() {
        suffix[i] = suffix[i + 1] + bounds[i];
    }
    let mut meter = BlockMeter::default();
    let mut bufs = std::mem::take(&mut scratch.block_bufs);
    let mut cursors: Vec<Option<BlockCursor>> = terms
        .iter()
        .zip(scorers)
        .map(|(&(tid, qtf), &scorer)| {
            let tid = tid?;
            if index.doc_freq_of(tid) == 0 {
                return None;
            }
            Some(BlockCursor::new(
                index,
                tid,
                scorer,
                qtf as f64,
                bufs.pop().unwrap_or_default(),
            ))
        })
        .collect();
    let result = block_max_daat(
        index,
        &suffix,
        &mut cursors,
        to_global,
        filter,
        cancel,
        top,
        &mut meter,
    );
    // Flush meters and return the decode buffers on every exit path, so a
    // cancelled kernel still reports its work and keeps its allocations.
    for c in cursors.into_iter().flatten() {
        bufs.push(c.buf);
    }
    scratch.block_bufs = bufs;
    scratch.postings_visited += meter.steps + meter.scored;
    scratch.blocks_skipped += meter.skipped;
    scratch.blocks_scored += meter.scored;
    result
}

/// The traversal loop of [`block_max_accumulate`], split out so the caller
/// can reclaim cursor buffers and flush meters on the cancelled path too.
#[allow(clippy::too_many_arguments)]
fn block_max_daat<'a>(
    index: &'a Index,
    suffix: &[f64],
    cursors: &mut [Option<BlockCursor<'a>>],
    to_global: &dyn Fn(DocId) -> DocId,
    filter: Option<&dyn Fn(DocId) -> bool>,
    cancel: Option<&dyn Fn() -> bool>,
    top: &mut TopK,
    meter: &mut BlockMeter,
) -> Result<(), Cancelled> {
    let lengths = index.doc_lengths();
    let mut remaining = if cancel.is_some() {
        CANCEL_POSTING_BUDGET
    } else {
        usize::MAX
    };
    // Essential prefix size: terms[p..] alone cannot beat θ̂. Starts full
    // (no threshold, no skipping) and only shrinks, like MaxScore
    // engagement — strictly-greater for the same tiebreak-safety reason.
    let mut p = cursors.len();
    loop {
        meter.drain(&mut remaining, cancel)?;
        let theta = top.full_threshold();
        if let Some(theta) = theta {
            while p > 0 && theta > suffix[p - 1] {
                p -= 1;
            }
            if p == 0 {
                break;
            }
        }
        // The next candidate: minimum current doc over live essential
        // cursors — and the runner-up doc, which caps any skip.
        let mut d: Option<DocId> = None;
        let mut next_after: Option<DocId> = None;
        for c in cursors[..p].iter().flatten() {
            if c.exhausted() {
                continue;
            }
            let doc = c.doc();
            match d {
                None => d = Some(doc),
                Some(cur) if doc < cur => {
                    next_after = Some(next_after.map_or(cur, |n| n.min(cur)));
                    d = Some(doc);
                }
                Some(cur) if doc > cur => {
                    next_after = Some(next_after.map_or(doc, |n| n.min(doc)));
                }
                _ => {}
            }
        }
        let Some(d) = d else { break };
        // Upper bound on d's score: the non-essential suffix plus the
        // current block maxima of the essential cursors sitting on d.
        let mut ub = suffix[p];
        for c in cursors[..p].iter().flatten() {
            if !c.exhausted() && c.doc() == d {
                ub += c.bound;
            }
        }
        if theta.is_none_or(|t| ub > t) {
            let global = to_global(d);
            if filter.is_none_or(|f| f(global)) {
                // Score d across ALL terms in bound order — essential
                // cursors already sit on or past d, non-essential ones
                // catch up here (admitted candidates only move forward, so
                // their cursors stay monotone). Identical float sum and
                // matched count to the exhaustive kernel's slot for d.
                let mut score = 0.0f64;
                let mut matched = 0usize;
                for c in cursors.iter_mut().flatten() {
                    if c.advance_while(index, |x| x < d, meter) && c.doc() == d {
                        c.ensure_loaded(index, meter);
                        score += c.scorer.score(lengths[d as usize], c.wtf()) * c.qtf;
                        matched += 1;
                    }
                }
                top.push(Hit {
                    doc: global,
                    score,
                    matched_terms: matched,
                });
            }
            for c in cursors[..p].iter_mut().flatten() {
                if !c.exhausted() && c.doc() == d {
                    c.advance_while(index, |x| x <= d, meter);
                }
            }
        } else {
            // d (and everything sharing its blocks) cannot beat θ̂. Every
            // doc in (d, end] lies only in the essential blocks currently
            // bounding d — any other essential cursor sits at or past
            // `next_after` — so the whole run shares (at most) d's upper
            // bound and is skipped in one lane jump per cursor.
            let mut end = DocId::MAX;
            for c in cursors[..p].iter().flatten() {
                if !c.exhausted() && c.doc() == d {
                    end = end.min(c.last_doc());
                }
            }
            let cap = next_after.filter(|&nd| nd <= end);
            for c in cursors[..p].iter_mut().flatten() {
                if !c.exhausted() && c.doc() == d {
                    match cap {
                        // Seek to the runner-up candidate (≥ nd)…
                        Some(nd) => c.advance_while(index, |x| x < nd, meter),
                        // …or strictly past the earliest block end.
                        None => c.advance_while(index, |x| x <= end, meter),
                    };
                }
            }
        }
    }
    Ok(())
}

/// Tail-term accumulation once pruning is engaged: update already-touched
/// candidates only, admitting no new documents. Touched candidates get the
/// exact same `+=` their slot would have received exhaustively (one add
/// per term per doc — cross-document order is irrelevant to the per-doc
/// float sum), so surviving scores stay bit-identical.
///
/// Two walk strategies, picked by cost: binary-search each candidate in
/// the postings (`touched × log₂(df)` probes) when the candidate list is
/// small relative to the postings, else an epoch-checked walk over the
/// full postings slice. Both count toward `postings_visited` and the
/// cancel budget per element walked.
#[allow(clippy::too_many_arguments)]
fn prune_accumulate(
    scratch: &mut ScoreScratch,
    lengths: &[f64],
    docs: &[DocId],
    tfs: &[f64],
    scorer: &TermScorer,
    qtf: f64,
    remaining: &mut usize,
    cancel: Option<&dyn Fn() -> bool>,
) -> Result<(), Cancelled> {
    let ScoreScratch {
        acc,
        touched,
        epoch,
        postings_visited,
        ..
    } = scratch;
    let df = docs.len();
    let bitlen = (usize::BITS - df.leading_zeros()) as usize;
    if touched.len().saturating_mul(bitlen + 1) < df {
        // Candidate-driven: probe each touched doc against the postings.
        let mut pos = 0usize;
        while pos < touched.len() {
            let take = (*remaining).min(touched.len() - pos);
            for &doc in &touched[pos..pos + take] {
                if let Ok(i) = docs.binary_search(&doc) {
                    // Touched docs are live by construction; no epoch check.
                    let slot = &mut acc[doc as usize];
                    slot.score += scorer.score(lengths[doc as usize], tfs[i]) * qtf;
                    slot.matched += 1;
                }
            }
            pos += take;
            *postings_visited += take as u64;
            spend_budget(remaining, take, cancel)?;
        }
    } else {
        // Posting-driven: walk the slice, skipping docs with dead slots.
        let ep = *epoch;
        let mut pos = 0usize;
        while pos < df {
            let take = (*remaining).min(df - pos);
            for (&doc, &weighted_tf) in docs[pos..pos + take].iter().zip(&tfs[pos..pos + take]) {
                let slot = &mut acc[doc as usize];
                if slot.epoch == ep {
                    slot.score += scorer.score(lengths[doc as usize], weighted_tf) * qtf;
                    slot.matched += 1;
                }
            }
            pos += take;
            *postings_visited += take as u64;
            spend_budget(remaining, take, cancel)?;
        }
    }
    Ok(())
}

/// The accumulation half of the kernel: walk each resolved term's postings
/// (decoding through `decode` when the index stores them compressed) into
/// `scratch`, engaging MaxScore pruning as thresholds allow. Split out of
/// [`score_terms_into_topk`] so the decoded-postings borrow of `decode` and
/// the `&mut scratch` accumulator borrows stay disjoint.
#[allow(clippy::too_many_arguments)]
fn accumulate_terms(
    index: &Index,
    terms: &[(Option<TermId>, usize)],
    scorers: &[TermScorer],
    bounds: &[f64],
    scratch: &mut ScoreScratch,
    filter: Option<&dyn Fn(DocId) -> bool>,
    opts: KernelOpts<'_>,
    top: &TopK,
    decode: &mut PostingsBuf,
) -> Result<(), Cancelled> {
    let lengths = index.doc_lengths();
    // suffix[i] = Σ bounds[i..]: the best score any document first seen at
    // term i could still reach. Summed in reverse so the value is exact up
    // to n·ε rounding — absorbed by the bounds' built-in margin.
    let mut suffix = vec![0.0f64; terms.len() + 1];
    for i in (0..terms.len()).rev() {
        suffix[i] = suffix[i + 1] + bounds[i];
    }
    let mut remaining = if opts.cancel.is_some() {
        CANCEL_POSTING_BUDGET
    } else {
        usize::MAX
    };
    let mut pruning = false;
    for (i, ((tid, qtf), scorer)) in terms.iter().zip(scorers).enumerate() {
        // Strictly-greater: a doc admitted at term i can reach at most
        // suffix[i]; pruning it is only safe when even that loses to the
        // threshold outright (ties would fall through to the doc-id
        // tiebreak, which bounds know nothing about). Once engaged it
        // stays engaged — suffixes shrink and thresholds grow.
        if opts.tier != KernelTier::Exhaustive && !pruning {
            pruning = current_threshold(top, scratch, filter.is_none())
                .is_some_and(|theta| theta > suffix[i]);
        }
        // Unknown terms have no postings.
        let Some(tid) = *tid else {
            continue;
        };
        let postings = index.postings_of_with(tid, decode);
        let qtf = *qtf as f64;
        if pruning {
            prune_accumulate(
                scratch,
                lengths,
                postings.docs,
                postings.weighted_tfs,
                scorer,
                qtf,
                &mut remaining,
                opts.cancel,
            )?;
            continue;
        }
        // Two parallel flat slices: docs ascending, tfs matched by index.
        // Chunked by the cancel budget so the hot loop stays branch-lean.
        let (docs, tfs) = (postings.docs, postings.weighted_tfs);
        let mut pos = 0usize;
        while pos < docs.len() {
            let take = remaining.min(docs.len() - pos);
            for (&doc, &weighted_tf) in docs[pos..pos + take].iter().zip(&tfs[pos..pos + take]) {
                let score = scorer.score(lengths[doc as usize], weighted_tf) * qtf;
                scratch.add(doc, score);
            }
            pos += take;
            scratch.postings_visited += take as u64;
            spend_budget(&mut remaining, take, opts.cancel)?;
        }
    }
    Ok(())
}

/// The scoring kernel both search paths share: accumulate the resolved
/// terms' postings into `scratch`, then select the top `k` hits among
/// documents accepted by `filter`.
///
/// `terms` holds each distinct query term **already resolved against this
/// index's dictionary** (`None` = not in its vocabulary) with its query
/// multiplicity — the caller pays the one hash probe per term, this loop
/// pays none. `scorers` and `bounds` are parallel to `terms` (one
/// [`TermScorer`] and one margin-inflated score upper bound per term,
/// statistics already folded in — the caller decides whether those are
/// index-local or corpus-global), and the caller has already permuted all
/// three into [`bound_order`]. `to_global` maps the index's local doc ids
/// into the caller's id space (identity for an unsharded index); `filter`
/// sees mapped ids, as do the returned hits — `None` means unfiltered and
/// additionally unlocks the partial-threshold pruning probe.
///
/// `Err(Cancelled)` only when `opts.cancel` is set and trips; infallible
/// otherwise.
#[allow(clippy::too_many_arguments)]
pub(crate) fn score_terms_into(
    index: &Index,
    terms: &[(Option<TermId>, usize)],
    scorers: &[TermScorer],
    bounds: &[f64],
    k: usize,
    scratch: &mut ScoreScratch,
    to_global: impl Fn(DocId) -> DocId,
    filter: Option<&dyn Fn(DocId) -> bool>,
    opts: KernelOpts<'_>,
) -> Result<Vec<Hit>, Cancelled> {
    let mut top = TopK::new(k);
    score_terms_into_topk(
        index, terms, scorers, bounds, scratch, to_global, filter, opts, &mut top,
    )?;
    Ok(top.into_sorted_hits())
}

/// [`score_terms_into`] pushing its candidates into a caller-owned [`TopK`]
/// instead of selecting locally. Because [`rank_hits`] totally orders
/// distinct documents, feeding several indexes (the shards of a sharded
/// search) through one `TopK` yields exactly the hits that per-index
/// selection followed by a merge would — minus the per-index heaps, sorts,
/// and hit lists. The inline sharded path is the caller that cashes that
/// in (and whose partially-full heap gives later shards a head-start
/// pruning threshold).
#[allow(clippy::too_many_arguments)]
pub(crate) fn score_terms_into_topk(
    index: &Index,
    terms: &[(Option<TermId>, usize)],
    scorers: &[TermScorer],
    bounds: &[f64],
    scratch: &mut ScoreScratch,
    to_global: impl Fn(DocId) -> DocId,
    filter: Option<&dyn Fn(DocId) -> bool>,
    opts: KernelOpts<'_>,
    top: &mut TopK,
) -> Result<(), Cancelled> {
    scratch.begin(index.num_docs());
    if opts.tier == KernelTier::BlockMax {
        // Document-at-a-time: pushes hits into `top` itself during the
        // traversal (that's what feeds θ̂), no touched-slot sweep needed.
        return block_max_accumulate(
            index,
            terms,
            scorers,
            bounds,
            scratch,
            &to_global,
            filter,
            opts.cancel,
            top,
        );
    }
    // The decode buffer leaves the scratch for the duration of the
    // accumulation loop: a decoded `Postings` view borrows the buffer,
    // while the accumulators need `&mut scratch` at the same time. Restore
    // it on every exit path (including cancellation) so the allocation
    // keeps amortizing.
    let mut decode = std::mem::take(&mut scratch.decode);
    let accumulated = accumulate_terms(
        index,
        terms,
        scorers,
        bounds,
        scratch,
        filter,
        opts,
        top,
        &mut decode,
    );
    scratch.decode = decode;
    accumulated?;

    for &doc in &scratch.touched {
        let global = to_global(doc);
        if let Some(f) = filter {
            if !f(global) {
                continue;
            }
        }
        let slot = &scratch.acc[doc as usize];
        top.push(Hit {
            doc: global,
            score: slot.score,
            matched_terms: slot.matched as usize,
        });
    }
    Ok(())
}

impl<'a> Searcher<'a> {
    /// New searcher with the given scoring function (pruning enabled).
    pub fn new(index: &'a Index, scoring: ScoringFunction) -> Self {
        Searcher {
            index,
            scoring,
            tier: KernelTier::default(),
        }
    }

    /// Builder toggle: `true` selects the exhaustive reference kernel so
    /// every posting is walked (the kernel the pruned tiers must match
    /// bit-for-bit — used by CI diffs and the `scoring` bench); `false`
    /// restores the default tier.
    pub fn with_exhaustive(mut self, exhaustive: bool) -> Self {
        self.tier = if exhaustive {
            KernelTier::Exhaustive
        } else {
            KernelTier::default()
        };
        self
    }

    /// Builder: pick the scoring kernel tier explicitly (every tier
    /// returns bit-identical hits; they differ only in postings walked).
    pub fn with_tier(mut self, tier: KernelTier) -> Self {
        self.tier = tier;
        self
    }

    /// The underlying index.
    pub fn index(&self) -> &Index {
        self.index
    }

    /// Run `query`, returning up to `k` hits, best first. Documents must
    /// match at least one query term to appear. Ties break by ascending
    /// doc id for determinism.
    pub fn search(&self, query: &str, k: usize) -> Vec<Hit> {
        let terms = self.index.analyzer().tokenize(query);
        self.search_terms(&terms, k)
    }

    /// Run a query given pre-analyzed terms.
    pub fn search_terms(&self, terms: &[String], k: usize) -> Vec<Hit> {
        with_thread_scratch(|scratch| self.search_terms_core(terms, k, None, scratch))
    }

    /// [`Searcher::search_terms`] with a caller-owned scratch buffer (see
    /// [`ScoreScratch`] for the reuse rules). Unfiltered, so MaxScore
    /// pruning is fully armed — batch drivers and the `scoring` bench pair
    /// this with [`ScoreScratch::postings_visited`] to meter the kernel.
    pub fn search_terms_with(
        &self,
        terms: &[String],
        k: usize,
        scratch: &mut ScoreScratch,
    ) -> Vec<Hit> {
        self.search_terms_core(terms, k, None, scratch)
    }

    /// Run `query`, keeping only documents accepted by `filter`. The filter
    /// is applied before top-k selection, so a restrictive filter still
    /// yields up to `k` of *its* documents (used by the qunit engine to rank
    /// "instances of the identified type").
    pub fn search_where(&self, query: &str, k: usize, filter: impl Fn(DocId) -> bool) -> Vec<Hit> {
        let terms = self.index.analyzer().tokenize(query);
        self.search_terms_where(&terms, k, filter)
    }

    /// [`Searcher::search_where`] with pre-analyzed terms. Uses the calling
    /// thread's default [`ScoreScratch`].
    pub fn search_terms_where(
        &self,
        terms: &[String],
        k: usize,
        filter: impl Fn(DocId) -> bool,
    ) -> Vec<Hit> {
        with_thread_scratch(|scratch| self.search_terms_core(terms, k, Some(&filter), scratch))
    }

    /// [`Searcher::search_terms_where`] with a caller-owned scratch buffer
    /// (see [`ScoreScratch`] for the reuse rules) — batch drivers reuse one
    /// scratch across their whole workload.
    pub fn search_terms_where_with(
        &self,
        terms: &[String],
        k: usize,
        filter: impl Fn(DocId) -> bool,
        scratch: &mut ScoreScratch,
    ) -> Vec<Hit> {
        self.search_terms_core(terms, k, Some(&filter), scratch)
    }

    /// Resolve `deduped` query terms against the dictionary and fold
    /// statistics: ids + multiplicities, scorers, and margin-inflated
    /// score bounds, all permuted into [`bound_order`].
    #[allow(clippy::type_complexity)]
    fn resolve_terms(
        &self,
        deduped: &[(&str, usize)],
    ) -> (Vec<(Option<TermId>, usize)>, Vec<TermScorer>, Vec<f64>) {
        // One dictionary probe per distinct term: the resolved id yields
        // the postings (for the kernel), the document frequency (for the
        // scorer — the same statistics `TermStats::of` reads), and the
        // max weighted tf lane (for the bound).
        let num_docs = self.index.num_docs();
        let avg_doc_length = self.index.avg_doc_length();
        let mut resolved = Vec::with_capacity(deduped.len());
        let mut scorers = Vec::with_capacity(deduped.len());
        let mut bounds = Vec::with_capacity(deduped.len());
        for (term, qtf) in deduped {
            let id = self.index.term_id(term);
            // Offsets-lane subtraction: O(1) under either postings codec.
            let doc_freq = id.map_or(0, |id| self.index.doc_freq_of(id));
            let scorer = self.scoring.scorer(TermStats {
                num_docs,
                doc_freq,
                avg_doc_length,
            });
            let max_wtf = id.map_or(0.0, |id| self.index.max_weighted_tf_of(id));
            bounds.push(scorer.max_score(max_wtf) * *qtf as f64);
            resolved.push((id, *qtf));
            scorers.push(scorer);
        }
        let order = bound_order(&bounds);
        (
            order.iter().map(|&i| resolved[i]).collect(),
            order.iter().map(|&i| scorers[i]).collect(),
            order.iter().map(|&i| bounds[i]).collect(),
        )
    }

    /// The one search body behind every public entry point.
    fn search_terms_core(
        &self,
        terms: &[String],
        k: usize,
        filter: Option<&dyn Fn(DocId) -> bool>,
        scratch: &mut ScoreScratch,
    ) -> Vec<Hit> {
        if k == 0 || terms.is_empty() {
            return Vec::new();
        }
        let (resolved, scorers, bounds) = self.resolve_terms(&dedup_terms(terms));
        let opts = KernelOpts {
            tier: self.tier,
            cancel: None,
        };
        score_terms_into(
            self.index,
            &resolved,
            &scorers,
            &bounds,
            k,
            scratch,
            |d| d,
            filter,
            opts,
        )
        .expect("kernel is infallible without a cancel probe")
    }

    /// Convenience: the single best hit, if any.
    pub fn top(&self, query: &str) -> Option<Hit> {
        self.search(query, 1).into_iter().next()
    }

    /// Score one specific document against a query (same accumulation as
    /// [`Searcher::search`], restricted to `doc`). Returns a zero-score hit
    /// when no query term matches the document.
    ///
    /// Sums term contributions in the same `bound_order` as the kernel,
    /// so the float total is bit-identical to the document's full-search
    /// score.
    pub fn score_doc(&self, query: &str, doc: DocId) -> Hit {
        let terms = self.index.analyzer().tokenize(query);
        let deduped = dedup_terms(&terms);
        let bounds: Vec<f64> = deduped
            .iter()
            .map(|(term, qtf)| {
                let scorer = self.scoring.scorer(TermStats::of(self.index, term));
                scorer.max_score(self.index.max_weighted_tf(term)) * *qtf as f64
            })
            .collect();
        let mut score = 0.0;
        let mut matched_terms = 0;
        let mut buf = PostingsBuf::new();
        for &i in &bound_order(&bounds) {
            let (term, qtf) = deduped[i];
            // Resolve the postings view once per term (decoding through the
            // buffer on a compressed index); the doc probe is a binary
            // search over the doc-id slice.
            let postings = self.index.postings_with(term, &mut buf);
            if let Ok(p) = postings.docs.binary_search(&doc) {
                score += self
                    .scoring
                    .score_term(self.index, term, doc, postings.weighted_tfs[p])
                    * qtf as f64;
                matched_terms += 1;
            }
        }
        Hit {
            doc,
            score,
            matched_terms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::Document;
    use crate::index::IndexBuilder;
    use std::cell::Cell;

    fn movie_index() -> Index {
        let mut b = IndexBuilder::new();
        b.set_field_boost("title", 2.0);
        b.add(
            Document::new("star-wars")
                .field("title", "Star Wars")
                .field("body", "luke skywalker darth vader rebels empire"),
        );
        b.add(
            Document::new("star-trek")
                .field("title", "Star Trek")
                .field("body", "kirk spock enterprise federation"),
        );
        b.add(
            Document::new("oceans")
                .field("title", "Ocean's Eleven")
                .field("body", "george clooney brad pitt heist casino"),
        );
        b.build()
    }

    #[test]
    fn exact_title_wins() {
        let ix = movie_index();
        let s = Searcher::new(&ix, ScoringFunction::default());
        let hits = s.search("star wars", 10);
        assert_eq!(ix.external_id(hits[0].doc), Some("star-wars"));
        assert_eq!(hits[0].matched_terms, 2);
        // star trek shares one term
        assert_eq!(ix.external_id(hits[1].doc), Some("star-trek"));
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn body_terms_match_too() {
        let ix = movie_index();
        let s = Searcher::new(&ix, ScoringFunction::default());
        let top = s.top("george clooney").unwrap();
        assert_eq!(ix.external_id(top.doc), Some("oceans"));
    }

    #[test]
    fn k_truncates_and_orders_descending() {
        let ix = movie_index();
        let s = Searcher::new(&ix, ScoringFunction::default());
        let hits = s.search("star", 1);
        assert_eq!(hits.len(), 1);
        let all = s.search("star", 10);
        assert!(all.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn bounded_topk_equals_full_ranking_prefix() {
        let ix = movie_index();
        let s = Searcher::new(&ix, ScoringFunction::default());
        let all = s.search("star wars george", 100);
        for k in 1..=all.len() {
            assert_eq!(s.search("star wars george", k), all[..k], "k={k}");
        }
    }

    #[test]
    fn zero_k_and_empty_query() {
        let ix = movie_index();
        let s = Searcher::new(&ix, ScoringFunction::default());
        assert!(s.search("star", 0).is_empty());
        assert!(s.search("", 10).is_empty());
        assert!(s.search("the of", 10).is_empty()); // all stopwords
    }

    #[test]
    fn unmatched_query_returns_empty() {
        let ix = movie_index();
        let s = Searcher::new(&ix, ScoringFunction::default());
        assert!(s.search("zzzz qqqq", 10).is_empty());
    }

    #[test]
    fn explicit_scratch_reuse_matches_thread_local_path() {
        let ix = movie_index();
        let s = Searcher::new(&ix, ScoringFunction::default());
        let mut scratch = ScoreScratch::new();
        let terms = ix.analyzer().tokenize("star wars");
        let expected = s.search_terms(&terms, 10);
        // the same scratch serves many queries (and a different index size)
        for _ in 0..3 {
            let got = s.search_terms_where_with(&terms, 10, |_| true, &mut scratch);
            assert_eq!(got, expected);
        }
        let mut small = IndexBuilder::new();
        small.add(Document::new("x").field("body", "star"));
        let small = small.build();
        let s2 = Searcher::new(&small, ScoringFunction::default());
        let t2 = small.analyzer().tokenize("star");
        assert_eq!(
            s2.search_terms_where_with(&t2, 5, |_| true, &mut scratch),
            s2.search_terms(&t2, 5)
        );
    }

    #[test]
    fn epoch_wrap_resets_slots() {
        let ix = movie_index();
        let s = Searcher::new(&ix, ScoringFunction::default());
        let terms = ix.analyzer().tokenize("star wars");
        let expected = s.search_terms(&terms, 10);
        let mut scratch = ScoreScratch::new();
        // Force the wrap path: pretend 2^32 - 1 queries already ran.
        scratch.epoch = u32::MAX - 1;
        let a = s.search_terms_where_with(&terms, 10, |_| true, &mut scratch);
        // this query hits epoch == u32::MAX, the next one wraps
        let b = s.search_terms_where_with(&terms, 10, |_| true, &mut scratch);
        let c = s.search_terms_where_with(&terms, 10, |_| true, &mut scratch);
        assert_eq!(a, expected);
        assert_eq!(b, expected);
        assert_eq!(c, expected);
        // a ran at u32::MAX, b triggered the reset (epoch 1), c is epoch 2
        assert_eq!(scratch.epoch, 2);
    }

    #[test]
    fn scratch_pool_round_trips_buffers() {
        let pool = ScratchPool::new();
        let mut a = pool.take();
        a.begin(64); // warm it
        pool.put(a);
        let b = pool.take(); // the warm buffer comes back
        assert_eq!(b.acc.len(), 64);
        let c = pool.take(); // pool empty again → fresh
        assert_eq!(c.acc.len(), 0);
    }

    #[test]
    fn scratch_pool_free_list_is_capped() {
        let pool = ScratchPool::new();
        let burst: Vec<ScoreScratch> = (0..MAX_POOLED_SCRATCHES + 8).map(|_| pool.take()).collect();
        for s in burst {
            pool.put(s);
        }
        assert_eq!(
            pool.free.lock().unwrap().len(),
            MAX_POOLED_SCRATCHES,
            "returns beyond the cap must be dropped"
        );
        // And the pool still round-trips normally at the cap.
        let s = pool.take();
        pool.put(s);
        assert_eq!(pool.free.lock().unwrap().len(), MAX_POOLED_SCRATCHES);
    }

    #[test]
    fn tfidf_also_ranks_exact_match_first() {
        let ix = movie_index();
        let s = Searcher::new(&ix, ScoringFunction::TfIdf);
        let hits = s.search("star wars", 10);
        assert_eq!(ix.external_id(hits[0].doc), Some("star-wars"));
    }

    #[test]
    fn repeated_query_terms_increase_weight() {
        let ix = movie_index();
        let s = Searcher::new(&ix, ScoringFunction::default());
        let once = s.search("star clooney", 10);
        let twice = s.search("star star clooney", 10);
        // doubling "star" should (weakly) promote the star documents
        let pos_once = once
            .iter()
            .position(|h| ix.external_id(h.doc) == Some("star-wars"))
            .unwrap();
        let pos_twice = twice
            .iter()
            .position(|h| ix.external_id(h.doc) == Some("star-wars"))
            .unwrap();
        assert!(pos_twice <= pos_once);
    }

    #[test]
    fn deterministic_tiebreak_by_doc_id() {
        let mut b = IndexBuilder::new();
        b.add(Document::new("a").field("body", "same text"));
        b.add(Document::new("b").field("body", "same text"));
        let ix = b.build();
        let s = Searcher::new(&ix, ScoringFunction::default());
        let hits = s.search("same", 10);
        assert_eq!(ix.external_id(hits[0].doc), Some("a"));
        assert_eq!(ix.external_id(hits[1].doc), Some("b"));
        // tie + k=1 keeps the lower doc id, same as the full ranking
        assert_eq!(s.search("same", 1), hits[..1]);
    }

    #[test]
    fn bound_order_sorts_descending_with_first_occurrence_ties() {
        assert_eq!(bound_order(&[1.0, 3.0, 3.0, 0.5]), vec![1, 2, 0, 3]);
        assert_eq!(bound_order(&[0.0, 0.0]), vec![0, 1]);
        assert_eq!(bound_order(&[]), Vec::<usize>::new());
    }

    /// One rare term (df=3) and one ubiquitous term (df=n): after the rare
    /// term the k≤3 partial threshold dwarfs the common term's bound, so
    /// the kernel must go candidate-driven and probe the 3 touched docs
    /// instead of walking n postings — with bit-identical output.
    #[test]
    fn pruned_matches_exhaustive_and_walks_fewer_postings() {
        let mut b = IndexBuilder::new();
        for i in 0..3 {
            b.add(Document::new(format!("d{i}")).field("body", "rare common"));
        }
        for i in 3..200 {
            b.add(Document::new(format!("d{i}")).field("body", "common"));
        }
        let ix = b.build();
        let terms = ix.analyzer().tokenize("rare common");

        let pruned_searcher =
            Searcher::new(&ix, ScoringFunction::default()).with_tier(KernelTier::MaxScore);
        let exhaustive_searcher = pruned_searcher.clone().with_exhaustive(true);
        for k in [1usize, 3, 500] {
            let mut ps = ScoreScratch::new();
            let mut es = ScoreScratch::new();
            let pruned = pruned_searcher.search_terms_with(&terms, k, &mut ps);
            let exhaustive = exhaustive_searcher.search_terms_with(&terms, k, &mut es);
            // Bit-identical scores, ids, order, matched counts.
            assert_eq!(pruned.len(), exhaustive.len(), "k={k}");
            for (p, e) in pruned.iter().zip(&exhaustive) {
                assert_eq!(p.doc, e.doc, "k={k}");
                assert_eq!(p.score.to_bits(), e.score.to_bits(), "k={k}");
                assert_eq!(p.matched_terms, e.matched_terms, "k={k}");
            }
            if k < 200 {
                assert!(
                    ps.postings_visited() < es.postings_visited(),
                    "k={k}: pruned {} vs exhaustive {}",
                    ps.postings_visited(),
                    es.postings_visited()
                );
            } else {
                // k >= matched docs: the threshold never fills, no pruning.
                assert_eq!(ps.postings_visited(), es.postings_visited());
            }
        }
    }

    /// The cancel probe fires at deterministic posting counts: every
    /// [`CANCEL_POSTING_BUDGET`] accumulated postings, regardless of how
    /// they split across terms.
    #[test]
    fn cancel_probe_fires_on_a_deterministic_posting_budget() {
        // Budget drains hit the kernel.checkpoint failpoint, so hold the
        // registry lock: a concurrently-armed schedule must not leak in.
        let _g = crate::fault::registry_test_lock();
        // 600 docs × 8 shared terms = 4800 postings: the budget (4096)
        // drains exactly once mid-kernel.
        let mut b = IndexBuilder::new();
        let body = "t0 t1 t2 t3 t4 t5 t6 t7";
        for i in 0..600 {
            b.add(Document::new(format!("d{i}")).field("body", body));
        }
        let ix = b.build();
        let s = Searcher::new(&ix, ScoringFunction::default()).with_exhaustive(true);
        let terms = ix.analyzer().tokenize(body);
        let (resolved, scorers, bounds) = s.resolve_terms(&dedup_terms(&terms));

        // A probe that never trips still gets polled exactly once.
        let polls = Cell::new(0u32);
        let benign = |probe_result: bool| {
            polls.set(0);
            let probe = || {
                polls.set(polls.get() + 1);
                probe_result
            };
            let mut scratch = ScoreScratch::new();
            let before = scratch.postings_visited();
            let opts = KernelOpts {
                tier: KernelTier::Exhaustive,
                cancel: Some(&probe),
            };
            let out = score_terms_into(
                &ix,
                &resolved,
                &scorers,
                &bounds,
                10,
                &mut scratch,
                |d| d,
                None,
                opts,
            );
            (out, scratch.postings_visited() - before)
        };

        let (ok, visited) = benign(false);
        assert_eq!(ok.map(|hits| hits.len()), Ok(10));
        assert_eq!(visited, 4800);
        assert_eq!(polls.get(), 1, "4800 postings drain a 4096 budget once");

        let (cancelled, visited) = benign(true);
        assert_eq!(cancelled, Err(Cancelled));
        assert_eq!(
            visited, CANCEL_POSTING_BUDGET as u64,
            "the abort lands exactly at the first budget boundary"
        );
        assert_eq!(polls.get(), 1);

        // Untripped runs match a probe-free run bit-for-bit.
        let baseline = s.search_terms(&terms, 10);
        assert_eq!(benign(false).0.unwrap(), baseline);
    }

    /// `postings_visited` is cumulative across queries on one scratch —
    /// callers meter a single search by diffing readings.
    #[test]
    fn postings_visited_accumulates_across_queries() {
        let ix = movie_index();
        let s = Searcher::new(&ix, ScoringFunction::default());
        let terms = ix.analyzer().tokenize("star wars");
        let mut scratch = ScoreScratch::new();
        s.search_terms_with(&terms, 10, &mut scratch);
        let first = scratch.postings_visited();
        assert!(first > 0);
        s.search_terms_with(&terms, 10, &mut scratch);
        assert_eq!(scratch.postings_visited(), first * 2);
    }

    /// Filtered searches keep pruning sound: the partial threshold is
    /// disabled (a filter could reject the partial leaders), and results
    /// must match the exhaustive filtered ranking exactly.
    #[test]
    fn filtered_search_matches_exhaustive_reference() {
        let mut b = IndexBuilder::new();
        b.add(Document::new("d0").field("body", "rare common"));
        for i in 1..100 {
            b.add(Document::new(format!("d{i}")).field("body", "common"));
        }
        let ix = b.build();
        let terms = ix.analyzer().tokenize("rare common");
        let s = Searcher::new(&ix, ScoringFunction::default());
        let e = s.clone().with_exhaustive(true);
        // A filter that rejects the best partial leader (doc 0).
        let filter = |d: DocId| d != 0;
        let pruned = s.search_terms_where(&terms, 3, filter);
        let exhaustive = e.search_terms_where(&terms, 3, filter);
        assert_eq!(pruned, exhaustive);
        assert!(pruned.iter().all(|h| h.doc != 0));
        // All three tiers agree under the filter (the default tier above
        // is block-max; MaxScore closes the triangle).
        let m = s.clone().with_tier(KernelTier::MaxScore);
        assert_eq!(m.search_terms_where(&terms, 3, filter), exhaustive);
    }

    /// The determinism triangle at the unit level: block-max ≡ MaxScore ≡
    /// exhaustive, bit-for-bit, across block sizes (1, tiny, default,
    /// larger than any posting list), both codecs, and a k sweep — and
    /// block-max never walks more postings than the exhaustive kernel.
    #[test]
    fn block_max_matches_other_tiers_across_block_sizes_and_codecs() {
        for block_size in [1usize, 4, 128, 10_000] {
            for compressed in [false, true] {
                let mut b = IndexBuilder::new();
                b.set_block_size(block_size);
                for i in 0..3 {
                    b.add(Document::new(format!("d{i}")).field("body", "rare common"));
                }
                for i in 3..200 {
                    b.add(Document::new(format!("d{i}")).field("body", "common"));
                }
                let mut ix = b.build();
                if compressed {
                    ix.compress_postings();
                }
                let terms = ix.analyzer().tokenize("rare common");
                let bm = Searcher::new(&ix, ScoringFunction::default());
                let ms = bm.clone().with_tier(KernelTier::MaxScore);
                let ex = bm.clone().with_tier(KernelTier::Exhaustive);
                for k in [1usize, 3, 10, 500] {
                    let tag = format!("bs={block_size} compressed={compressed} k={k}");
                    let mut bs = ScoreScratch::new();
                    let mut mss = ScoreScratch::new();
                    let mut es = ScoreScratch::new();
                    let b_hits = bm.search_terms_with(&terms, k, &mut bs);
                    let m_hits = ms.search_terms_with(&terms, k, &mut mss);
                    let e_hits = ex.search_terms_with(&terms, k, &mut es);
                    assert_eq!(b_hits.len(), e_hits.len(), "{tag}");
                    for (b, e) in b_hits.iter().zip(&e_hits) {
                        assert_eq!(b.doc, e.doc, "{tag}");
                        assert_eq!(b.score.to_bits(), e.score.to_bits(), "{tag}");
                        assert_eq!(b.matched_terms, e.matched_terms, "{tag}");
                    }
                    assert_eq!(m_hits, e_hits, "{tag}");
                    assert!(
                        bs.postings_visited() <= es.postings_visited(),
                        "{tag}: block-max {} vs exhaustive {}",
                        bs.postings_visited(),
                        es.postings_visited()
                    );
                }
            }
        }
    }

    /// In-term skipping MaxScore cannot do: one term whose giant posting
    /// sits in its *first* block. Once that document sets θ̂, every later
    /// block's bound loses and is bypassed through the lanes — never
    /// loaded, never decoded, postings uncounted.
    #[test]
    fn block_max_skips_later_blocks_after_an_early_spike() {
        // The spike doc is short and saturated in tf, the filler docs are
        // long: BM25's length normalization puts the spike's actual score
        // above the analytic tf-1 peak that bounds every other block, so
        // θ̂ beats those bounds outright once the spike is scored.
        let mut b = IndexBuilder::new();
        b.set_block_size(4);
        b.add(Document::new("d0").field("body", "spike ".repeat(8)));
        let filler: String = (0..20).fold("spike".to_string(), |s, i| s + &format!(" w{i}"));
        for i in 1..=400 {
            b.add(Document::new(format!("d{i}")).field("body", &filler));
        }
        let mut ix = b.build();
        ix.compress_postings();
        let terms = ix.analyzer().tokenize("spike");

        let bm = Searcher::new(&ix, ScoringFunction::default());
        let ex = bm.clone().with_tier(KernelTier::Exhaustive);
        let mut bs = ScoreScratch::new();
        let mut es = ScoreScratch::new();
        let b_hits = bm.search_terms_with(&terms, 1, &mut bs);
        let e_hits = ex.search_terms_with(&terms, 1, &mut es);
        assert_eq!(b_hits.len(), 1);
        assert_eq!(b_hits[0].doc, e_hits[0].doc);
        assert_eq!(b_hits[0].score.to_bits(), e_hits[0].score.to_bits());
        // 401 postings in ~101 blocks: the spike block scores, the rest
        // skip wholesale without a varint decode.
        assert!(
            bs.blocks_skipped() > 90,
            "skipped only {} blocks",
            bs.blocks_skipped()
        );
        assert!(
            bs.postings_visited() * 10 < es.postings_visited(),
            "block-max {} vs exhaustive {}",
            bs.postings_visited(),
            es.postings_visited()
        );
        assert_eq!(es.blocks_skipped(), 0, "exhaustive never skips");
    }

    /// The block-max kernel polls the cancel probe at the same
    /// deterministic posting-count boundaries as the other tiers: counts
    /// drain through the one shared budget, so poll tallies are a pure
    /// function of query and index.
    #[test]
    fn block_max_cancel_polls_are_deterministic() {
        // Budget drains hit the kernel.checkpoint failpoint (see above).
        let _g = crate::fault::registry_test_lock();
        let mut b = IndexBuilder::new();
        let body = "t0 t1 t2 t3 t4 t5 t6 t7";
        for i in 0..600 {
            b.add(Document::new(format!("d{i}")).field("body", body));
        }
        let ix = b.build();
        let s = Searcher::new(&ix, ScoringFunction::default());
        let terms = ix.analyzer().tokenize(body);
        let (resolved, scorers, bounds) = s.resolve_terms(&dedup_terms(&terms));

        let polls = Cell::new(0u32);
        let run = |probe_result: bool| {
            polls.set(0);
            let probe = || {
                polls.set(polls.get() + 1);
                probe_result
            };
            let mut scratch = ScoreScratch::new();
            let opts = KernelOpts {
                tier: KernelTier::BlockMax,
                cancel: Some(&probe),
            };
            let out = score_terms_into(
                &ix,
                &resolved,
                &scorers,
                &bounds,
                10,
                &mut scratch,
                |d| d,
                None,
                opts,
            );
            (out, scratch.postings_visited(), polls.get())
        };

        let (first, first_visited, first_polls) = run(false);
        let (second, second_visited, second_polls) = run(false);
        assert!(first_polls >= 1, "enough postings to drain the budget");
        assert_eq!(first_polls, second_polls, "poll count is deterministic");
        assert_eq!(first_visited, second_visited);
        assert_eq!(first.as_ref().unwrap(), second.as_ref().unwrap());
        // Untripped block-max under a probe matches the probe-free run.
        assert_eq!(first.unwrap(), s.search_terms(&terms, 10));

        let (cancelled, aborted_at, _) = run(true);
        assert_eq!(cancelled, Err(Cancelled));
        assert!(
            aborted_at <= first_visited,
            "the abort cannot visit more than a full run"
        );
    }

    /// The `kernel.checkpoint` failpoint shares the cooperative cancel
    /// cadence: with a (never-tripping) probe wired, an injected error
    /// aborts at exactly the first budget boundary — indistinguishable
    /// from a real deadline trip — and with no probe there are no
    /// checkpoints, so the site is never even hit.
    #[test]
    fn kernel_checkpoint_failpoint_cancels_at_the_budget_boundary() {
        let _g = crate::fault::registry_test_lock();
        let mut b = IndexBuilder::new();
        let body = "t0 t1 t2 t3 t4 t5 t6 t7";
        for i in 0..600 {
            b.add(Document::new(format!("d{i}")).field("body", body));
        }
        let ix = b.build();
        let s = Searcher::new(&ix, ScoringFunction::default()).with_exhaustive(true);
        let terms = ix.analyzer().tokenize(body);
        let (resolved, scorers, bounds) = s.resolve_terms(&dedup_terms(&terms));
        let run = |cancel: Option<&dyn Fn() -> bool>| {
            let mut scratch = ScoreScratch::new();
            let before = scratch.postings_visited();
            let opts = KernelOpts {
                tier: KernelTier::Exhaustive,
                cancel,
            };
            let out = score_terms_into(
                &ix,
                &resolved,
                &scorers,
                &bounds,
                10,
                &mut scratch,
                |d| d,
                None,
                opts,
            );
            (out, scratch.postings_visited() - before)
        };

        crate::fault::install("kernel.checkpoint=error@#1").unwrap();
        let never = || false;
        let (out, visited) = run(Some(&never));
        assert_eq!(out, Err(Cancelled), "injected trip surfaces as Cancelled");
        assert_eq!(
            visited, CANCEL_POSTING_BUDGET as u64,
            "the abort lands exactly at the first checkpoint"
        );
        assert_eq!(
            crate::fault::site_counters(crate::fault::site::KERNEL_CHECKPOINT),
            (1, 1)
        );

        // Probe-free kernels keep zero checkpoint bookkeeping: the armed
        // schedule is simply never consulted, and the run completes.
        let (out, visited) = run(None);
        assert_eq!(out.map(|hits| hits.len()), Ok(10));
        assert_eq!(visited, 4800);
        assert_eq!(
            crate::fault::site_counters(crate::fault::site::KERNEL_CHECKPOINT),
            (1, 1),
            "no probe, no checkpoint, no hit"
        );
        crate::fault::clear();
    }
}
