//! The inverted index: term dictionary, postings lists, document lengths,
//! and stored documents.
//!
//! Field boosts are applied at index time: a token occurring in a field with
//! boost `w` contributes `w` to its weighted term frequency. This keeps the
//! scorer field-agnostic — exactly the "treat qunit instances as plain
//! documents" stance of the paper.

use crate::analysis::Analyzer;
use crate::document::{DocId, Document};
use crate::shard::ShardedIndex;
use std::collections::HashMap;

/// One entry of a postings list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Posting {
    /// Document containing the term.
    pub doc: DocId,
    /// Boost-weighted term frequency.
    pub weighted_tf: f64,
}

/// An immutable searchable index. Build via [`IndexBuilder`].
///
/// Immutability is load-bearing for the concurrent query path upstream:
/// once built, an `Index` holds plain owned data (no interior mutability),
/// so it is `Send + Sync` and any number of [`crate::Searcher`]s can read
/// it from different threads without locking. The assertion below keeps a
/// future mutation cache from silently revoking that.
///
/// # Document id space
///
/// Every [`DocId`] accepted or returned by this type is **local to this
/// index**: the dense 0-based position at which [`IndexBuilder::add`]
/// received the document. A standalone index's local ids are also its
/// global ids; inside a [`ShardedIndex`] each shard has its own local id
/// space and the sharded wrapper owns the global one — translate with
/// [`ShardedIndex::to_global`] / [`ShardedIndex::to_local`] and never hand
/// a global id to a shard (or vice versa). Out-of-range lookups are always
/// defined, never a panic: [`Index::doc_length`] returns `0.0`,
/// [`Index::document`] and [`Index::external_id`] return `None`.
#[derive(Debug, Clone)]
pub struct Index {
    analyzer: Analyzer,
    postings: HashMap<String, Vec<Posting>>,
    doc_lengths: Vec<f64>,
    avg_doc_length: f64,
    docs: Vec<Document>,
    external_to_doc: HashMap<String, DocId>,
}

const fn assert_send_sync<T: Send + Sync>() {}
const _: () = assert_send_sync::<Index>();

impl Index {
    /// Number of documents.
    pub fn num_docs(&self) -> usize {
        self.docs.len()
    }

    /// Vocabulary size (distinct terms).
    pub fn num_terms(&self) -> usize {
        self.postings.len()
    }

    /// Postings for a term (already analyzed form).
    pub fn postings(&self, term: &str) -> &[Posting] {
        self.postings.get(term).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Document frequency of a term.
    pub fn doc_freq(&self, term: &str) -> usize {
        self.postings(term).len()
    }

    /// Boost-weighted length of a document.
    ///
    /// `doc` is a **local** id of this index (see the type-level docs on the
    /// id space). An out-of-range id returns `0.0` — the length of a
    /// document with no tokens — rather than panicking, and the sharded
    /// path ([`ShardedIndex::doc_length`]) honors the same contract for
    /// global ids, so both id spaces degrade identically on bad input.
    pub fn doc_length(&self, doc: DocId) -> f64 {
        self.doc_lengths.get(doc as usize).copied().unwrap_or(0.0)
    }

    /// Mean document length (0 for an empty index).
    pub fn avg_doc_length(&self) -> f64 {
        self.avg_doc_length
    }

    /// The stored document.
    pub fn document(&self, doc: DocId) -> Option<&Document> {
        self.docs.get(doc as usize)
    }

    /// External id of a document.
    pub fn external_id(&self, doc: DocId) -> Option<&str> {
        self.docs.get(doc as usize).map(|d| d.external_id.as_str())
    }

    /// Internal id for an external id.
    pub fn doc_for_external(&self, external: &str) -> Option<DocId> {
        self.external_to_doc.get(external).copied()
    }

    /// The analyzer this index was built with (use it for queries).
    pub fn analyzer(&self) -> &Analyzer {
        &self.analyzer
    }

    /// Every indexed term, in arbitrary order (used by the content
    /// fingerprint, which sorts them itself).
    pub fn terms(&self) -> impl Iterator<Item = &str> {
        self.postings.keys().map(String::as_str)
    }
}

/// Mutable accumulation of documents into an [`Index`].
#[derive(Debug, Clone)]
pub struct IndexBuilder {
    analyzer: Analyzer,
    field_boosts: HashMap<String, f64>,
    docs: Vec<Document>,
}

impl Default for IndexBuilder {
    fn default() -> Self {
        IndexBuilder::new()
    }
}

impl IndexBuilder {
    /// Builder with the default analyzer and no field boosts.
    pub fn new() -> Self {
        IndexBuilder {
            analyzer: Analyzer::new(),
            field_boosts: HashMap::new(),
            docs: Vec::new(),
        }
    }

    /// Use a custom analyzer.
    pub fn with_analyzer(mut self, analyzer: Analyzer) -> Self {
        self.analyzer = analyzer;
        self
    }

    /// Set the boost of a field (default 1.0).
    pub fn set_field_boost(&mut self, field: impl Into<String>, boost: f64) {
        self.field_boosts.insert(field.into(), boost);
    }

    /// Add a document. Duplicate external ids are allowed but
    /// [`Index::doc_for_external`] will resolve to the first.
    pub fn add(&mut self, doc: Document) -> DocId {
        let id = self.docs.len() as DocId;
        self.docs.push(doc);
        id
    }

    /// Number of documents added so far.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True iff no documents were added.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Freeze into a sharded index of `n` independent [`Index`] shards (at
    /// least one; empty shards are fine when `n` exceeds the corpus).
    ///
    /// Documents partition by **deterministic round-robin over insertion
    /// order**: document `i` goes to shard `i % n` at local position
    /// `i / n`. Insertion order is the only input, so two builders fed the
    /// same documents in the same order shard identically no matter how
    /// many worker threads produced those documents — that, plus the
    /// per-shard [`IndexBuilder::build`] being a pure function of its docs,
    /// is what the CI determinism gate hashes. Round-robin (rather than
    /// contiguous ranges) also balances shard sizes to within one document,
    /// so intra-query fan-out degrades gracefully at any shard count.
    pub fn build_sharded(self, n: usize) -> ShardedIndex {
        let n = n.max(1);
        let mut parts: Vec<IndexBuilder> = (0..n)
            .map(|_| IndexBuilder {
                analyzer: self.analyzer.clone(),
                field_boosts: self.field_boosts.clone(),
                docs: Vec::new(),
            })
            .collect();
        for (i, doc) in self.docs.into_iter().enumerate() {
            parts[i % n].docs.push(doc);
        }
        ShardedIndex::from_shards(parts.into_iter().map(IndexBuilder::build).collect())
    }

    /// Freeze into a searchable index.
    pub fn build(self) -> Index {
        let mut postings: HashMap<String, Vec<Posting>> = HashMap::new();
        let mut doc_lengths = Vec::with_capacity(self.docs.len());
        let mut external_to_doc = HashMap::with_capacity(self.docs.len());

        for (i, doc) in self.docs.iter().enumerate() {
            let doc_id = i as DocId;
            external_to_doc
                .entry(doc.external_id.clone())
                .or_insert(doc_id);

            let mut tf: HashMap<String, f64> = HashMap::new();
            let mut length = 0.0;
            for (field, text) in &doc.fields {
                let boost = self.field_boosts.get(field).copied().unwrap_or(1.0);
                for tok in self.analyzer.tokenize(text) {
                    *tf.entry(tok).or_insert(0.0) += boost;
                    length += boost;
                }
            }
            doc_lengths.push(length);
            for (term, weighted_tf) in tf {
                postings.entry(term).or_default().push(Posting {
                    doc: doc_id,
                    weighted_tf,
                });
            }
        }
        // Postings arrive in doc-id order because we iterate docs in order,
        // but make the invariant explicit for future mutation paths.
        for list in postings.values_mut() {
            list.sort_by_key(|p| p.doc);
        }
        let avg_doc_length = if doc_lengths.is_empty() {
            0.0
        } else {
            doc_lengths.iter().sum::<f64>() / doc_lengths.len() as f64
        };
        Index {
            analyzer: self.analyzer,
            postings,
            doc_lengths,
            avg_doc_length,
            docs: self.docs,
            external_to_doc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_index() -> Index {
        let mut b = IndexBuilder::new();
        b.add(Document::new("a").field("body", "star wars cast"));
        b.add(Document::new("b").field("body", "star trek"));
        b.add(Document::new("c").field("body", "ocean drama"));
        b.build()
    }

    #[test]
    fn counts_and_lookup() {
        let ix = small_index();
        assert_eq!(ix.num_docs(), 3);
        assert_eq!(ix.doc_freq("star"), 2);
        assert_eq!(ix.doc_freq("ocean"), 1);
        assert_eq!(ix.doc_freq("ghost"), 0);
        assert_eq!(ix.external_id(0), Some("a"));
        assert_eq!(ix.doc_for_external("c"), Some(2));
        assert_eq!(ix.doc_for_external("zzz"), None);
    }

    #[test]
    fn postings_sorted_by_doc() {
        let ix = small_index();
        let ps = ix.postings("star");
        assert!(ps.windows(2).all(|w| w[0].doc < w[1].doc));
    }

    #[test]
    fn doc_lengths_and_average() {
        let ix = small_index();
        assert_eq!(ix.doc_length(0), 3.0);
        assert_eq!(ix.doc_length(1), 2.0);
        assert!((ix.avg_doc_length() - (3.0 + 2.0 + 2.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn doc_length_out_of_range_is_zero_never_a_panic() {
        let ix = small_index();
        assert_eq!(ix.doc_length(3), 0.0);
        assert_eq!(ix.doc_length(DocId::MAX), 0.0);
        assert!(ix.document(3).is_none());
        assert!(ix.external_id(3).is_none());
        // the empty index has no valid id at all
        assert_eq!(IndexBuilder::new().build().doc_length(0), 0.0);
    }

    #[test]
    fn field_boost_scales_tf_and_length() {
        let mut b = IndexBuilder::new();
        b.set_field_boost("title", 3.0);
        b.add(
            Document::new("x")
                .field("title", "star")
                .field("body", "star"),
        );
        let ix = b.build();
        let p = ix.postings("star");
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].weighted_tf, 4.0);
        assert_eq!(ix.doc_length(0), 4.0);
    }

    #[test]
    fn empty_index() {
        let ix = IndexBuilder::new().build();
        assert_eq!(ix.num_docs(), 0);
        assert_eq!(ix.avg_doc_length(), 0.0);
        assert!(ix.postings("x").is_empty());
    }

    #[test]
    fn duplicate_external_resolves_to_first() {
        let mut b = IndexBuilder::new();
        b.add(Document::new("dup").field("body", "one"));
        b.add(Document::new("dup").field("body", "two"));
        let ix = b.build();
        assert_eq!(ix.doc_for_external("dup"), Some(0));
    }

    #[test]
    fn stopwords_not_indexed_by_default() {
        let mut b = IndexBuilder::new();
        b.add(Document::new("x").field("body", "the cast of the movie"));
        let ix = b.build();
        assert_eq!(ix.doc_freq("the"), 0);
        assert_eq!(ix.doc_freq("cast"), 1);
    }
}
