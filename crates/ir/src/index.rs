//! The inverted index: interned term dictionary, CSR postings, document
//! lengths, and stored documents.
//!
//! Field boosts are applied at index time: a token occurring in a field with
//! boost `w` contributes `w` to its weighted term frequency. This keeps the
//! scorer field-agnostic — exactly the "treat qunit instances as plain
//! documents" stance of the paper.
//!
//! # Postings layout
//!
//! Postings are stored as one compressed-sparse-row (CSR) structure of
//! arrays rather than a map of per-term `Vec<Posting>` allocations:
//!
//! ```text
//! term_ids:     "cast" → 0   "star" → 1   "wars" → 2        (dictionary)
//! terms:        ["cast", "star", "wars"]                    (TermId → term)
//! offsets:      [0,      2,      5,     6]                  (len = terms+1)
//!                 \______ \_______ \_____
//! posting_docs: [ 0, 7,  | 0, 3, 7, | 3 ]                   (flat, doc asc)
//! posting_tfs:  [1.0,2.0,|1.0,1.0,3.0|1.0]                  (parallel)
//! ```
//!
//! Term `t`'s postings are the contiguous slices
//! `posting_docs[offsets[t]..offsets[t+1]]` /
//! `posting_tfs[offsets[t]..offsets[t+1]]`. A query resolves each term
//! through the dictionary **once**, then walks two flat arrays — no
//! per-posting hashing, no pointer chasing between heap-allocated lists.
//! [`TermId`]s are assigned by sorted term order at freeze time, so the
//! layout (and everything downstream of it) is a pure function of the
//! indexed content.
//!
//! # Block-max lanes
//!
//! Each term's CSR row is additionally cut into fixed-size blocks of
//! [`DEFAULT_BLOCK_SIZE`] postings (configurable per build), and a second
//! CSR structure — `BlockLanes` — freezes, per block, the maximum
//! weighted tf plus the first/last doc id. The block-max kernel in
//! `crate::search` uses those to skip whole blocks whose score upper bound
//! cannot beat the running top-k threshold, without touching the postings.
//! Like `term_max_tfs`, the lanes are a pure function of the indexed
//! content and survive both codecs and the snapshot format.
//!
//! # Compressed posting lanes
//!
//! The two flat lanes cost 12 bytes per posting (`u32` doc + `f64` tf). At
//! millions of documents that dominates the index footprint, so the lanes
//! can be swapped — [`Index::compress_postings`] — for a per-**block**
//! delta+varint byte stream ([`PostingsCodec::DeltaVarint`], fully specified
//! in `docs/INDEX_FORMAT.md`). Doc-id gaps restart at every block boundary,
//! so each block is independently decodable and a block the kernel skips is
//! never varint-decoded. The CSR `offsets` lane is kept verbatim in
//! both representations, so document frequencies and term lookup never
//! decode anything. Reads go through [`Index::postings_of_with`], which
//! hands back the same [`Postings`] view either way: a zero-copy borrow of
//! the flat lanes, or a bit-exact decode into a caller-supplied
//! [`PostingsBuf`]. Everything downstream (scores, MaxScore bound lanes,
//! shard fingerprints) is bit-identical across the two codecs.

use crate::analysis::Analyzer;
use crate::document::{DocId, Document};
use crate::shard::ShardedIndex;
use std::collections::HashMap;

/// Interned id of an indexed term: its rank in the lexicographically sorted
/// vocabulary of one [`Index`]. Dense, 0-based, assigned at freeze time —
/// and therefore **local to its index**: shards of a [`ShardedIndex`] each
/// intern their own vocabulary, so a `TermId` must never cross shards
/// (resolve per shard via [`Index::term_id`]).
pub type TermId = u32;

/// Default postings per block-max block (see the module docs). 128 keeps a
/// block inside two cache lines of doc ids while giving the skip cursor
/// enough granularity to bypass most of a heavy term's list.
pub const DEFAULT_BLOCK_SIZE: usize = 128;

/// One entry of a postings list (a materialized row of the CSR arrays).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Posting {
    /// Document containing the term.
    pub doc: DocId,
    /// Boost-weighted term frequency.
    pub weighted_tf: f64,
}

/// A borrowed view of one term's postings: two parallel slices into the
/// index's CSR arrays.
///
/// The hot scoring loop iterates `docs`/`weighted_tfs` directly (two linear
/// streams, no per-entry indirection); [`Postings::iter`] materializes
/// [`Posting`] values for callers that want the old row-at-a-time shape.
#[derive(Debug, Clone, Copy)]
pub struct Postings<'a> {
    /// Documents containing the term, ascending.
    pub docs: &'a [DocId],
    /// Boost-weighted term frequencies, parallel to `docs`.
    pub weighted_tfs: &'a [f64],
}

impl<'a> Postings<'a> {
    /// The empty postings list (unknown terms resolve to this).
    pub fn empty() -> Self {
        Postings {
            docs: &[],
            weighted_tfs: &[],
        }
    }

    /// Number of postings (the term's document frequency).
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True iff the term occurs nowhere.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// The `i`-th posting, if in range.
    pub fn get(&self, i: usize) -> Option<Posting> {
        Some(Posting {
            doc: *self.docs.get(i)?,
            weighted_tf: self.weighted_tfs[i],
        })
    }

    /// Iterate the postings as materialized [`Posting`] values.
    pub fn iter(&self) -> impl Iterator<Item = Posting> + 'a {
        (*self).into_iter()
    }
}

impl<'a> IntoIterator for Postings<'a> {
    type Item = Posting;
    type IntoIter = std::iter::Map<
        std::iter::Zip<std::slice::Iter<'a, DocId>, std::slice::Iter<'a, f64>>,
        fn((&DocId, &f64)) -> Posting,
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.docs
            .iter()
            .zip(self.weighted_tfs)
            .map(|(&doc, &weighted_tf)| Posting { doc, weighted_tf })
    }
}

/// Freeze-time per-block score-bound lanes: a second CSR structure over the
/// posting rows, cut into fixed-size blocks.
///
/// Term `t`'s blocks are `offsets[t] .. offsets[t + 1]` (global block
/// indices) in the three parallel lanes; block `j` of term `t` covers
/// postings `csr_lo + j * block_size .. min(csr_lo + (j+1) * block_size,
/// csr_hi)` of the term's CSR row. Every lane is a pure function of the
/// indexed content (max is order-insensitive, first/last follow from the
/// ascending-doc contract), so the lanes are identical across codecs,
/// shard counts, and a snapshot round trip.
#[derive(Debug, Clone)]
pub(crate) struct BlockLanes {
    /// Fixed postings per block; only a term's final block may be shorter.
    /// Always ≥ 1.
    pub(crate) block_size: usize,
    /// CSR block offsets: `offsets.len() == terms.len() + 1`, prefix-sum of
    /// per-term block counts `ceil(df / block_size)`.
    pub(crate) offsets: Vec<u32>,
    /// Max boost-weighted tf within each block (the per-block analogue of
    /// the `term_max_tfs` lane).
    pub(crate) max_tfs: Vec<f64>,
    /// First doc id of each block.
    pub(crate) first_docs: Vec<DocId>,
    /// Last doc id of each block (inclusive; blocks are never empty).
    pub(crate) last_docs: Vec<DocId>,
}

impl BlockLanes {
    /// Freeze the lanes from flat posting lanes (`offsets` is the CSR
    /// posting offsets lane, `docs`/`tfs` the flat postings).
    pub(crate) fn freeze(
        block_size: usize,
        offsets: &[u32],
        docs: &[DocId],
        tfs: &[f64],
    ) -> BlockLanes {
        let block_size = block_size.max(1);
        let terms = offsets.len().saturating_sub(1);
        let total_blocks: usize = (0..terms)
            .map(|t| ((offsets[t + 1] - offsets[t]) as usize).div_ceil(block_size))
            .sum();
        let mut lanes = BlockLanes {
            block_size,
            offsets: Vec::with_capacity(terms + 1),
            max_tfs: Vec::with_capacity(total_blocks),
            first_docs: Vec::with_capacity(total_blocks),
            last_docs: Vec::with_capacity(total_blocks),
        };
        lanes.offsets.push(0u32);
        for t in 0..terms {
            let (lo, hi) = (offsets[t] as usize, offsets[t + 1] as usize);
            let mut start = lo;
            while start < hi {
                let end = (start + block_size).min(hi);
                lanes.first_docs.push(docs[start]);
                lanes.last_docs.push(docs[end - 1]);
                lanes
                    .max_tfs
                    .push(tfs[start..end].iter().fold(0.0f64, |a, &b| a.max(b)));
                start = end;
            }
            lanes.offsets.push(lanes.max_tfs.len() as u32);
        }
        lanes
    }

    /// Total number of blocks across all terms.
    pub(crate) fn num_blocks(&self) -> usize {
        self.max_tfs.len()
    }

    /// Global block index range of term `t`.
    pub(crate) fn term_blocks(&self, t: usize) -> std::ops::Range<usize> {
        self.offsets[t] as usize..self.offsets[t + 1] as usize
    }
}

/// In-memory representation of the CSR posting lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PostingsCodec {
    /// Two flat parallel arrays — zero decode cost, 12 bytes per posting.
    Flat,
    /// Per-term delta + varint byte stream (see `docs/INDEX_FORMAT.md`):
    /// doc ids as LEB128 gap varints, weighted tfs as tagged varints with a
    /// raw-bits escape for non-integral values. Decodes bit-exactly.
    DeltaVarint,
}

/// The posting lanes behind the CSR `offsets`. Both variants describe the
/// same logical postings; [`Index::compress_postings`] /
/// [`Index::decompress_postings`] convert losslessly between them.
#[derive(Debug, Clone)]
pub(crate) enum PostingStore {
    /// `docs`/`tfs` are the flat parallel lanes from the module docs.
    Flat { docs: Vec<DocId>, tfs: Vec<f64> },
    /// `bytes[byte_offsets[b]..byte_offsets[b+1]]` is **block** `b`'s
    /// encoded run (global block index per [`BlockLanes`]);
    /// `byte_offsets.len() == total_blocks + 1`. Doc-id gaps restart at
    /// each block boundary, so a block decodes without its predecessors.
    Compressed {
        bytes: Vec<u8>,
        byte_offsets: Vec<u64>,
    },
}

impl PostingStore {
    /// Heap bytes held by the posting lanes (the `memory_per_posting`
    /// numerator; excludes the shared `offsets` lane).
    pub(crate) fn heap_bytes(&self) -> usize {
        match self {
            PostingStore::Flat { docs, tfs } => {
                docs.len() * std::mem::size_of::<DocId>() + tfs.len() * std::mem::size_of::<f64>()
            }
            PostingStore::Compressed {
                bytes,
                byte_offsets,
            } => bytes.len() + byte_offsets.len() * std::mem::size_of::<u64>(),
        }
    }
}

/// Reusable decode buffer for [`Index::postings_of_with`].
///
/// On a [`PostingsCodec::Flat`] index the buffer is untouched (the view
/// borrows the index directly); on a compressed index the term's row is
/// decoded into it and the view borrows the buffer. Reuse one buffer per
/// thread/query to amortize its allocation across terms.
///
/// ```
/// use irengine::{Document, IndexBuilder, PostingsBuf};
///
/// let mut b = IndexBuilder::new();
/// b.add(Document::new("a").field("body", "star wars"));
/// let mut ix = b.build();
/// ix.compress_postings();
///
/// let mut buf = PostingsBuf::new();
/// let view = ix.postings_with("star", &mut buf);
/// assert_eq!(view.docs, &[0]);
/// ```
#[derive(Debug, Default, Clone)]
pub struct PostingsBuf {
    pub(crate) docs: Vec<DocId>,
    pub(crate) tfs: Vec<f64>,
}

impl PostingsBuf {
    /// An empty buffer (allocates lazily on first compressed decode).
    pub fn new() -> Self {
        PostingsBuf::default()
    }
}

/// Message for decode-time invariant violations. The encoder below is the
/// only producer of compressed rows and snapshot sections are checksummed,
/// so hitting this means in-memory corruption or a hand-edited snapshot
/// (snapshots are a trusted cache, not an untrusted input format).
const CORRUPT_ROW: &str = "corrupt delta+varint posting row (see docs/INDEX_FORMAT.md)";

/// Largest weighted tf storable inline as `(tf << 1) | 1` without
/// overflowing the tag varint's value space.
const MAX_INLINE_TF: u64 = (1 << 62) - 1;

/// LEB128: 7 value bits per byte, high bit = continuation.
fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *bytes.get(*pos).expect(CORRUPT_ROW);
        *pos += 1;
        assert!(shift < 64, "{CORRUPT_ROW}");
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

/// Encode one term's postings: per posting, the doc-id gap as a varint
/// (first doc absolute, then strictly positive deltas), followed by the tf
/// as a tagged varint — odd tag `(t << 1) | 1` for an exactly-representable
/// non-negative integer tf `t` (the overwhelmingly common case: tfs are sums
/// of field boosts), or tag `0` followed by the raw little-endian `f64` bits.
fn encode_row(docs: &[DocId], tfs: &[f64], out: &mut Vec<u8>) {
    let mut prev = 0u64;
    for (i, (&doc, &tf)) in docs.iter().zip(tfs).enumerate() {
        let doc = u64::from(doc);
        let gap = if i == 0 { doc } else { doc - prev };
        write_varint(out, gap);
        prev = doc;
        let int = tf as u64;
        if int <= MAX_INLINE_TF && (int as f64).to_bits() == tf.to_bits() {
            write_varint(out, (int << 1) | 1);
        } else {
            write_varint(out, 0);
            out.extend_from_slice(&tf.to_bits().to_le_bytes());
        }
    }
}

/// Bit-exact inverse of [`encode_row`]; panics on a malformed row (see
/// [`CORRUPT_ROW`]). Clears `buf` first; [`decode_block`] is the appending
/// variant the per-block reads compose from.
fn decode_row(bytes: &[u8], count: usize, buf: &mut PostingsBuf) {
    buf.docs.clear();
    buf.tfs.clear();
    decode_block(bytes, count, buf);
}

/// Decode one independently-encoded block, **appending** to `buf`. `bytes`
/// must be exactly the block's run (the trailing-bytes assert pins that).
fn decode_block(bytes: &[u8], count: usize, buf: &mut PostingsBuf) {
    // `postings.decode` failpoint: decode is infallible by contract (a
    // malformed row is index corruption and panics), so an injected error
    // escalates to a panic here too — contained at the query boundary.
    crate::fault::check_infallible(crate::fault::site::POSTINGS_DECODE);
    buf.docs.reserve(count);
    buf.tfs.reserve(count);
    let mut pos = 0usize;
    let mut doc = 0u64;
    for i in 0..count {
        let gap = read_varint(bytes, &mut pos);
        doc = if i == 0 { gap } else { doc + gap };
        assert!(doc <= u64::from(DocId::MAX), "{CORRUPT_ROW}");
        buf.docs.push(doc as DocId);
        let tag = read_varint(bytes, &mut pos);
        let tf = if tag == 0 {
            let raw: [u8; 8] = bytes
                .get(pos..pos + 8)
                .expect(CORRUPT_ROW)
                .try_into()
                .unwrap();
            pos += 8;
            f64::from_bits(u64::from_le_bytes(raw))
        } else {
            assert!(tag & 1 == 1, "{CORRUPT_ROW}");
            (tag >> 1) as f64
        };
        buf.tfs.push(tf);
    }
    assert!(pos == bytes.len(), "{CORRUPT_ROW}");
}

/// An immutable searchable index. Build via [`IndexBuilder`].
///
/// Immutability is load-bearing for the concurrent query path upstream:
/// once built, an `Index` holds plain owned data (no interior mutability),
/// so it is `Send + Sync` and any number of [`crate::Searcher`]s can read
/// it from different threads without locking. The assertion below keeps a
/// future mutation cache from silently revoking that.
///
/// # Document id space
///
/// Every [`DocId`] accepted or returned by this type is **local to this
/// index**: the dense 0-based position at which [`IndexBuilder::add`]
/// received the document. A standalone index's local ids are also its
/// global ids; inside a [`ShardedIndex`] each shard has its own local id
/// space and the sharded wrapper owns the global one — translate with
/// [`ShardedIndex::to_global`] / [`ShardedIndex::to_local`] and never hand
/// a global id to a shard (or vice versa). Out-of-range lookups are always
/// defined, never a panic: [`Index::doc_length`] returns `0.0`,
/// [`Index::document`] and [`Index::external_id`] return `None`.
#[derive(Debug, Clone)]
pub struct Index {
    analyzer: Analyzer,
    /// Term dictionary: analyzed term → interned [`TermId`].
    ///
    /// Deliberately held *beside* the sorted `terms` Vec even though a
    /// binary search over it could answer the same lookups: the dictionary
    /// probe is the entry point of every query term's scoring, and O(1)
    /// hashing beats ~log2(V) cache-missing string compares there. The
    /// price is each term String stored twice; vocabulary is the small
    /// side of an index (postings dominate), so the hot path wins.
    term_ids: HashMap<String, TermId>,
    /// Inverse dictionary: `terms[t]` is the term interned as id `t`.
    /// Sorted — [`TermId`]s are assigned in lexicographic term order.
    terms: Vec<String>,
    /// CSR row offsets: term `t`'s postings span
    /// `offsets[t] .. offsets[t + 1]` in the posting store below.
    /// `offsets.len() == terms.len() + 1`; `u32` bounds the index at 4 B
    /// postings (asserted in [`IndexBuilder::build`]). Kept uncompressed in
    /// both codecs so document frequency never decodes anything.
    offsets: Vec<u32>,
    /// The posting lanes: flat parallel arrays or a delta+varint stream.
    store: PostingStore,
    /// Per-term maximum of `posting_tfs` over the term's CSR row, indexed
    /// by [`TermId`] (`term_max_tfs.len() == terms.len()`). Computed at
    /// freeze time so the MaxScore pruned kernel can derive a score upper
    /// bound per query term ([`crate::TermScorer::max_score`]) without
    /// touching the postings. `max` is order-insensitive, so the corpus
    /// aggregate (max over shards) is invariant under shard count.
    term_max_tfs: Vec<f64>,
    /// Per-block score-bound lanes (see [`BlockLanes`]): block max tfs and
    /// first/last doc ids, frozen at build time beside `term_max_tfs` so
    /// the block-max kernel can bound and skip whole blocks without
    /// touching (or, compressed, decoding) the postings.
    blocks: BlockLanes,
    doc_lengths: Vec<f64>,
    avg_doc_length: f64,
    docs: Vec<Document>,
    external_to_doc: HashMap<String, DocId>,
}

const fn assert_send_sync<T: Send + Sync>() {}
const _: () = assert_send_sync::<Index>();

impl Index {
    /// Number of documents.
    pub fn num_docs(&self) -> usize {
        self.docs.len()
    }

    /// Vocabulary size (distinct terms).
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Total number of postings across all terms (the CSR arrays' length).
    pub fn num_postings(&self) -> usize {
        self.offsets.last().copied().unwrap_or(0) as usize
    }

    /// Interned id of a term (already analyzed form), if indexed. This is
    /// the **one** hash lookup a query term pays; everything after it is
    /// array indexing.
    pub fn term_id(&self, term: &str) -> Option<TermId> {
        self.term_ids.get(term).copied()
    }

    /// The term interned as `id`, if in range.
    pub fn term(&self, id: TermId) -> Option<&str> {
        self.terms.get(id as usize).map(String::as_str)
    }

    /// Postings for a term (already analyzed form): dictionary lookup +
    /// [`Index::postings_of`]. Unknown terms yield the empty view.
    ///
    /// # Panics
    ///
    /// Panics on a [`PostingsCodec::DeltaVarint`] index — a borrowed view
    /// cannot be served from an encoded stream. Use
    /// [`Index::postings_with`], which works under either codec.
    pub fn postings(&self, term: &str) -> Postings<'_> {
        match self.term_id(term) {
            Some(id) => self.postings_of(id),
            None => Postings::empty(),
        }
    }

    /// Postings for an interned term id: two parallel subslices of the CSR
    /// arrays, no hashing. Out-of-range ids yield the empty view (ids only
    /// come from [`Index::term_id`], but total beats panicking).
    ///
    /// # Panics
    ///
    /// Panics on a [`PostingsCodec::DeltaVarint`] index (see
    /// [`Index::postings`]); use [`Index::postings_of_with`] there.
    pub fn postings_of(&self, id: TermId) -> Postings<'_> {
        let t = id as usize;
        // (compare against terms.len(), not offsets.len() - 1 or t + 1:
        // both alternatives overflow at the extremes on 32-bit targets)
        if t >= self.terms.len() {
            return Postings::empty();
        }
        let (lo, hi) = (self.offsets[t] as usize, self.offsets[t + 1] as usize);
        match &self.store {
            PostingStore::Flat { docs, tfs } => Postings {
                docs: &docs[lo..hi],
                weighted_tfs: &tfs[lo..hi],
            },
            PostingStore::Compressed { .. } => panic!(
                "Index::postings_of on a compressed index: the lanes are \
                 delta+varint encoded, use postings_of_with with a PostingsBuf"
            ),
        }
    }

    /// Postings for an interned term id under **either codec**: a zero-copy
    /// borrow of the flat lanes, or a bit-exact decode of the term's row
    /// into `buf` (the view then borrows `buf`). Out-of-range ids yield the
    /// empty view either way.
    pub fn postings_of_with<'s>(&'s self, id: TermId, buf: &'s mut PostingsBuf) -> Postings<'s> {
        let t = id as usize;
        if t >= self.terms.len() {
            return Postings::empty();
        }
        let (lo, hi) = (self.offsets[t] as usize, self.offsets[t + 1] as usize);
        match &self.store {
            PostingStore::Flat { docs, tfs } => Postings {
                docs: &docs[lo..hi],
                weighted_tfs: &tfs[lo..hi],
            },
            PostingStore::Compressed {
                bytes,
                byte_offsets,
            } => {
                buf.docs.clear();
                buf.tfs.clear();
                let bs = self.blocks.block_size;
                for (j, b) in self.blocks.term_blocks(t).enumerate() {
                    let count = (hi - lo - j * bs).min(bs);
                    let run = &bytes[byte_offsets[b] as usize..byte_offsets[b + 1] as usize];
                    decode_block(run, count, buf);
                }
                Postings {
                    docs: &buf.docs,
                    weighted_tfs: &buf.tfs,
                }
            }
        }
    }

    /// [`Index::postings_of_with`] by analyzed term (dictionary lookup;
    /// unknown terms yield the empty view).
    pub fn postings_with<'s>(&'s self, term: &str, buf: &'s mut PostingsBuf) -> Postings<'s> {
        match self.term_id(term) {
            Some(id) => self.postings_of_with(id, buf),
            None => Postings::empty(),
        }
    }

    /// Document frequency of a term. Reads the CSR `offsets` lane only, so
    /// it is O(1) and never decodes under any codec.
    pub fn doc_freq(&self, term: &str) -> usize {
        self.term_id(term).map_or(0, |id| self.doc_freq_of(id))
    }

    /// Document frequency of an interned term id (0 when out of range).
    /// O(1): one subtraction over the `offsets` lane, no decode.
    pub fn doc_freq_of(&self, id: TermId) -> usize {
        let t = id as usize;
        if t >= self.terms.len() {
            return 0;
        }
        (self.offsets[t + 1] - self.offsets[t]) as usize
    }

    /// Which codec the posting lanes currently use.
    pub fn postings_codec(&self) -> PostingsCodec {
        match self.store {
            PostingStore::Flat { .. } => PostingsCodec::Flat,
            PostingStore::Compressed { .. } => PostingsCodec::DeltaVarint,
        }
    }

    /// Re-encode the posting lanes as a per-block delta+varint stream
    /// ([`PostingsCodec::DeltaVarint`]): one independently-decodable run per
    /// block-max block, gaps restarting at each block boundary. Lossless:
    /// decoding reproduces doc ids and weighted tfs bit-for-bit, so scores,
    /// MaxScore bounds, and fingerprints are unchanged. No-op if already
    /// compressed.
    pub fn compress_postings(&mut self) {
        let PostingStore::Flat { docs, tfs } = &self.store else {
            return;
        };
        let bs = self.blocks.block_size;
        let mut bytes = Vec::new();
        let mut byte_offsets = Vec::with_capacity(self.blocks.num_blocks() + 1);
        byte_offsets.push(0u64);
        for t in 0..self.terms.len() {
            let (lo, hi) = (self.offsets[t] as usize, self.offsets[t + 1] as usize);
            let mut start = lo;
            while start < hi {
                let end = (start + bs).min(hi);
                encode_row(&docs[start..end], &tfs[start..end], &mut bytes);
                byte_offsets.push(bytes.len() as u64);
                start = end;
            }
        }
        bytes.shrink_to_fit();
        self.store = PostingStore::Compressed {
            bytes,
            byte_offsets,
        };
    }

    /// Decode the posting lanes back to flat parallel arrays
    /// ([`PostingsCodec::Flat`]). No-op if already flat.
    pub fn decompress_postings(&mut self) {
        let PostingStore::Compressed {
            bytes,
            byte_offsets,
        } = &self.store
        else {
            return;
        };
        let total = self.num_postings();
        let mut docs = Vec::with_capacity(total);
        let mut tfs = Vec::with_capacity(total);
        let mut buf = PostingsBuf::new();
        let bs = self.blocks.block_size;
        for t in 0..self.terms.len() {
            let df = (self.offsets[t + 1] - self.offsets[t]) as usize;
            for (j, b) in self.blocks.term_blocks(t).enumerate() {
                let count = (df - j * bs).min(bs);
                let run = &bytes[byte_offsets[b] as usize..byte_offsets[b + 1] as usize];
                decode_row(run, count, &mut buf);
                docs.extend_from_slice(&buf.docs);
                tfs.extend_from_slice(&buf.tfs);
            }
        }
        self.store = PostingStore::Flat { docs, tfs };
    }

    /// Heap bytes held by the posting lanes under the current codec (the
    /// numerator of the `memory_per_posting_bytes` bench metric).
    pub fn posting_store_bytes(&self) -> usize {
        self.store.heap_bytes()
    }

    /// Largest boost-weighted term frequency among `id`'s postings — the
    /// freeze-time lane behind [`crate::TermScorer::max_score`]. `0.0` for
    /// out-of-range ids (and thus for any term with no postings).
    pub fn max_weighted_tf_of(&self, id: TermId) -> f64 {
        self.term_max_tfs.get(id as usize).copied().unwrap_or(0.0)
    }

    /// [`Index::max_weighted_tf_of`] by analyzed term (dictionary lookup;
    /// unknown terms yield `0.0`).
    pub fn max_weighted_tf(&self, term: &str) -> f64 {
        self.term_id(term)
            .map_or(0.0, |id| self.max_weighted_tf_of(id))
    }

    /// Postings per block-max block this index was frozen with (a term's
    /// final block may be shorter).
    pub fn block_size(&self) -> usize {
        self.blocks.block_size
    }

    /// One block of an interned term's postings under **either codec**:
    /// `block` is a *global* block index from
    /// [`BlockLanes::term_blocks`]`(t)`. Flat lanes hand back a zero-copy
    /// subslice; compressed lanes decode exactly this block into `buf` —
    /// never its neighbours, which is the point of per-block restarts.
    pub(crate) fn block_postings_with<'s>(
        &'s self,
        id: TermId,
        block: usize,
        buf: &'s mut PostingsBuf,
    ) -> Postings<'s> {
        let t = id as usize;
        let range = self.blocks.term_blocks(t);
        debug_assert!(range.contains(&block), "block {block} not in term {t}");
        let (lo, hi) = (self.offsets[t] as usize, self.offsets[t + 1] as usize);
        let start = lo + (block - range.start) * self.blocks.block_size;
        let end = (start + self.blocks.block_size).min(hi);
        match &self.store {
            PostingStore::Flat { docs, tfs } => Postings {
                docs: &docs[start..end],
                weighted_tfs: &tfs[start..end],
            },
            PostingStore::Compressed {
                bytes,
                byte_offsets,
            } => {
                let run = &bytes[byte_offsets[block] as usize..byte_offsets[block + 1] as usize];
                decode_row(run, end - start, buf);
                Postings {
                    docs: &buf.docs,
                    weighted_tfs: &buf.tfs,
                }
            }
        }
    }

    /// Boost-weighted length of a document.
    ///
    /// `doc` is a **local** id of this index (see the type-level docs on the
    /// id space). An out-of-range id returns `0.0` — the length of a
    /// document with no tokens — rather than panicking, and the sharded
    /// path ([`ShardedIndex::doc_length`]) honors the same contract for
    /// global ids, so both id spaces degrade identically on bad input.
    pub fn doc_length(&self, doc: DocId) -> f64 {
        self.doc_lengths.get(doc as usize).copied().unwrap_or(0.0)
    }

    /// All document lengths, indexed by local [`DocId`] (the scoring kernel
    /// reads this directly: postings only ever name in-range docs).
    pub fn doc_lengths(&self) -> &[f64] {
        &self.doc_lengths
    }

    /// Mean document length (0 for an empty index).
    pub fn avg_doc_length(&self) -> f64 {
        self.avg_doc_length
    }

    /// The stored document.
    pub fn document(&self, doc: DocId) -> Option<&Document> {
        self.docs.get(doc as usize)
    }

    /// External id of a document.
    pub fn external_id(&self, doc: DocId) -> Option<&str> {
        self.docs.get(doc as usize).map(|d| d.external_id.as_str())
    }

    /// Internal id for an external id.
    pub fn doc_for_external(&self, external: &str) -> Option<DocId> {
        self.external_to_doc.get(external).copied()
    }

    /// The analyzer this index was built with (use it for queries).
    pub fn analyzer(&self) -> &Analyzer {
        &self.analyzer
    }

    /// Every indexed term, in [`TermId`] order (lexicographically sorted).
    pub fn terms(&self) -> impl Iterator<Item = &str> {
        self.terms.iter().map(String::as_str)
    }

    // --- raw access for the snapshot writer/reader (crate::snapshot) ---

    pub(crate) fn raw_terms(&self) -> &[String] {
        &self.terms
    }

    pub(crate) fn raw_offsets(&self) -> &[u32] {
        &self.offsets
    }

    pub(crate) fn raw_store(&self) -> &PostingStore {
        &self.store
    }

    pub(crate) fn raw_term_max_tfs(&self) -> &[f64] {
        &self.term_max_tfs
    }

    pub(crate) fn raw_blocks(&self) -> &BlockLanes {
        &self.blocks
    }

    pub(crate) fn raw_docs(&self) -> &[Document] {
        &self.docs
    }

    /// Reassemble an [`Index`] from snapshot sections. Derived state
    /// (dictionary, external-id map, average length) is rebuilt here — it is
    /// a pure function of the stored lanes, so the result is identical to
    /// the originally built index. Returns a description of the first
    /// violated invariant instead of constructing a malformed index.
    #[allow(clippy::too_many_arguments)] // one parameter per snapshot section
    pub(crate) fn from_raw_parts(
        analyzer: Analyzer,
        terms: Vec<String>,
        offsets: Vec<u32>,
        store: PostingStore,
        term_max_tfs: Vec<f64>,
        blocks: BlockLanes,
        doc_lengths: Vec<f64>,
        docs: Vec<Document>,
    ) -> Result<Index, String> {
        if offsets.len() != terms.len() + 1 {
            return Err(format!(
                "offsets lane has {} entries for {} terms (want terms + 1)",
                offsets.len(),
                terms.len()
            ));
        }
        if offsets.first() != Some(&0) || offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("offsets lane is not a monotone prefix-sum from 0".to_owned());
        }
        if term_max_tfs.len() != terms.len() {
            return Err(format!(
                "term_max_tfs lane has {} entries for {} terms",
                term_max_tfs.len(),
                terms.len()
            ));
        }
        if terms.windows(2).any(|w| w[0] >= w[1]) {
            return Err("term dictionary is not strictly sorted".to_owned());
        }
        if doc_lengths.len() != docs.len() {
            return Err(format!(
                "doc_lengths lane has {} entries for {} stored docs",
                doc_lengths.len(),
                docs.len()
            ));
        }
        if blocks.block_size == 0 {
            return Err("block lanes declare block_size 0 (must be ≥ 1)".to_owned());
        }
        if blocks.offsets.len() != terms.len() + 1 {
            return Err(format!(
                "block offsets lane has {} entries for {} terms (want terms + 1)",
                blocks.offsets.len(),
                terms.len()
            ));
        }
        if blocks.offsets.first() != Some(&0) || blocks.offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("block offsets lane is not a monotone prefix-sum from 0".to_owned());
        }
        for t in 0..terms.len() {
            let df = (offsets[t + 1] - offsets[t]) as usize;
            let want = df.div_ceil(blocks.block_size);
            let got = (blocks.offsets[t + 1] - blocks.offsets[t]) as usize;
            if got != want {
                return Err(format!(
                    "term {t} has {got} blocks for {df} postings at block size {} (want {want})",
                    blocks.block_size
                ));
            }
        }
        let total_blocks = *blocks.offsets.last().unwrap() as usize;
        if blocks.max_tfs.len() != total_blocks
            || blocks.first_docs.len() != total_blocks
            || blocks.last_docs.len() != total_blocks
        {
            return Err(format!(
                "block lanes hold {}/{}/{} entries, block offsets say {total_blocks}",
                blocks.max_tfs.len(),
                blocks.first_docs.len(),
                blocks.last_docs.len()
            ));
        }
        let total = *offsets.last().unwrap() as usize;
        match &store {
            PostingStore::Flat { docs, tfs } => {
                if docs.len() != total || tfs.len() != total {
                    return Err(format!(
                        "flat lanes hold {}/{} postings, offsets say {total}",
                        docs.len(),
                        tfs.len()
                    ));
                }
            }
            PostingStore::Compressed {
                bytes,
                byte_offsets,
            } => {
                if byte_offsets.len() != total_blocks + 1 {
                    return Err(format!(
                        "byte_offsets lane has {} entries for {total_blocks} blocks \
                         (want blocks + 1)",
                        byte_offsets.len()
                    ));
                }
                if byte_offsets.first() != Some(&0)
                    || byte_offsets.windows(2).any(|w| w[0] > w[1])
                    || byte_offsets.last() != Some(&(bytes.len() as u64))
                {
                    return Err(
                        "byte_offsets lane is not a monotone prefix-sum over the stream".to_owned(),
                    );
                }
            }
        }

        let term_ids = terms
            .iter()
            .enumerate()
            .map(|(t, term)| (term.clone(), t as TermId))
            .collect();
        let mut external_to_doc = HashMap::with_capacity(docs.len());
        for (i, doc) in docs.iter().enumerate() {
            external_to_doc
                .entry(doc.external_id.clone())
                .or_insert(i as DocId);
        }
        // Same reduction order as IndexBuilder::build (insertion order), so
        // the float result is bit-identical to the built index's.
        let avg_doc_length = if doc_lengths.is_empty() {
            0.0
        } else {
            doc_lengths.iter().sum::<f64>() / doc_lengths.len() as f64
        };
        Ok(Index {
            analyzer,
            term_ids,
            terms,
            offsets,
            store,
            term_max_tfs,
            blocks,
            doc_lengths,
            avg_doc_length,
            docs,
            external_to_doc,
        })
    }
}

/// Mutable accumulation of documents into an [`Index`].
#[derive(Debug, Clone)]
pub struct IndexBuilder {
    analyzer: Analyzer,
    field_boosts: HashMap<String, f64>,
    block_size: usize,
    docs: Vec<Document>,
}

impl Default for IndexBuilder {
    fn default() -> Self {
        IndexBuilder::new()
    }
}

impl IndexBuilder {
    /// Builder with the default analyzer and no field boosts.
    pub fn new() -> Self {
        IndexBuilder {
            analyzer: Analyzer::new(),
            field_boosts: HashMap::new(),
            block_size: DEFAULT_BLOCK_SIZE,
            docs: Vec::new(),
        }
    }

    /// Use a custom analyzer.
    pub fn with_analyzer(mut self, analyzer: Analyzer) -> Self {
        self.analyzer = analyzer;
        self
    }

    /// Set the boost of a field (default 1.0).
    pub fn set_field_boost(&mut self, field: impl Into<String>, boost: f64) {
        self.field_boosts.insert(field.into(), boost);
    }

    /// Set the postings-per-block granularity of the frozen block lanes
    /// (default [`DEFAULT_BLOCK_SIZE`]; clamped to ≥ 1). Smaller blocks
    /// skip more precisely but cost more lane memory and more per-block
    /// bound checks; the choice never affects scores, only work.
    pub fn set_block_size(&mut self, block_size: usize) {
        self.block_size = block_size.max(1);
    }

    /// Add a document. Duplicate external ids are allowed but
    /// [`Index::doc_for_external`] will resolve to the first.
    pub fn add(&mut self, doc: Document) -> DocId {
        let id = self.docs.len() as DocId;
        self.docs.push(doc);
        id
    }

    /// Number of documents added so far.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True iff no documents were added.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Freeze into a sharded index of `n` independent [`Index`] shards (at
    /// least one; empty shards are fine when `n` exceeds the corpus).
    ///
    /// Documents partition by **deterministic round-robin over insertion
    /// order**: document `i` goes to shard `i % n` at local position
    /// `i / n`. Insertion order is the only input, so two builders fed the
    /// same documents in the same order shard identically no matter how
    /// many worker threads produced those documents — that, plus the
    /// per-shard [`IndexBuilder::build`] being a pure function of its docs,
    /// is what the CI determinism gate hashes. Round-robin (rather than
    /// contiguous ranges) also balances shard sizes to within one document,
    /// so intra-query fan-out degrades gracefully at any shard count.
    pub fn build_sharded(self, n: usize) -> ShardedIndex {
        let n = n.max(1);
        let mut parts: Vec<IndexBuilder> = (0..n)
            .map(|_| IndexBuilder {
                analyzer: self.analyzer.clone(),
                field_boosts: self.field_boosts.clone(),
                block_size: self.block_size,
                docs: Vec::new(),
            })
            .collect();
        for (i, doc) in self.docs.into_iter().enumerate() {
            parts[i % n].docs.push(doc);
        }
        ShardedIndex::from_shards(parts.into_iter().map(IndexBuilder::build).collect())
    }

    /// Freeze into a searchable index: accumulate per-term postings, then
    /// intern the vocabulary in sorted order and lay the postings out as
    /// one CSR structure of arrays (see the module docs for the layout).
    pub fn build(self) -> Index {
        // Transient per-term lists; flattened into the CSR arrays below.
        let mut lists: HashMap<String, Vec<(DocId, f64)>> = HashMap::new();
        let mut doc_lengths = Vec::with_capacity(self.docs.len());
        let mut external_to_doc = HashMap::with_capacity(self.docs.len());

        // Both per-document scratch buffers survive the loop: `tokens` is
        // refilled in place by tokenize_into, `tf` is cleared but keeps its
        // table allocation.
        let mut tokens: Vec<String> = Vec::new();
        let mut tf: HashMap<String, f64> = HashMap::new();
        for (i, doc) in self.docs.iter().enumerate() {
            let doc_id = i as DocId;
            external_to_doc
                .entry(doc.external_id.clone())
                .or_insert(doc_id);

            let mut length = 0.0;
            for (field, text) in &doc.fields {
                let boost = self.field_boosts.get(field).copied().unwrap_or(1.0);
                self.analyzer.tokenize_into(text, &mut tokens);
                for tok in tokens.drain(..) {
                    *tf.entry(tok).or_insert(0.0) += boost;
                    length += boost;
                }
            }
            doc_lengths.push(length);
            for (term, &weighted_tf) in &tf {
                match lists.get_mut(term) {
                    Some(list) => list.push((doc_id, weighted_tf)),
                    None => {
                        lists.insert(term.clone(), vec![(doc_id, weighted_tf)]);
                    }
                }
            }
            tf.clear();
        }

        // Intern terms in sorted order: TermId assignment must be a pure
        // function of the content (HashMap iteration order is not), and the
        // sort clusters prefix-sharing terms' postings for locality.
        let mut entries: Vec<(String, Vec<(DocId, f64)>)> = lists.into_iter().collect();
        entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));

        let total: usize = entries.iter().map(|(_, l)| l.len()).sum();
        assert!(
            total <= u32::MAX as usize,
            "CSR offsets are u32: index exceeds 4B postings"
        );
        let mut term_ids = HashMap::with_capacity(entries.len());
        let mut terms = Vec::with_capacity(entries.len());
        let mut offsets = Vec::with_capacity(entries.len() + 1);
        let mut posting_docs = Vec::with_capacity(total);
        let mut posting_tfs = Vec::with_capacity(total);
        let mut term_max_tfs = Vec::with_capacity(entries.len());
        offsets.push(0u32);
        for (term, mut list) in entries {
            term_ids.insert(term.clone(), terms.len() as TermId);
            terms.push(term);
            // Documents were scanned in id order, so each list arrives
            // sorted by doc — but the binary searches in score_doc and the
            // ascending-docs contract of `Postings` lean on this, so keep
            // enforcing it (O(n) on already-sorted input) rather than
            // trusting future mutation paths to preserve it.
            list.sort_unstable_by_key(|&(doc, _)| doc);
            let mut max_tf = 0.0f64;
            for (doc, weighted_tf) in list {
                posting_docs.push(doc);
                posting_tfs.push(weighted_tf);
                max_tf = max_tf.max(weighted_tf);
            }
            term_max_tfs.push(max_tf);
            offsets.push(posting_docs.len() as u32);
        }

        let avg_doc_length = if doc_lengths.is_empty() {
            0.0
        } else {
            doc_lengths.iter().sum::<f64>() / doc_lengths.len() as f64
        };
        let blocks = BlockLanes::freeze(self.block_size, &offsets, &posting_docs, &posting_tfs);
        Index {
            analyzer: self.analyzer,
            term_ids,
            terms,
            offsets,
            store: PostingStore::Flat {
                docs: posting_docs,
                tfs: posting_tfs,
            },
            term_max_tfs,
            blocks,
            doc_lengths,
            avg_doc_length,
            docs: self.docs,
            external_to_doc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_index() -> Index {
        let mut b = IndexBuilder::new();
        b.add(Document::new("a").field("body", "star wars cast"));
        b.add(Document::new("b").field("body", "star trek"));
        b.add(Document::new("c").field("body", "ocean drama"));
        b.build()
    }

    #[test]
    fn counts_and_lookup() {
        let ix = small_index();
        assert_eq!(ix.num_docs(), 3);
        assert_eq!(ix.doc_freq("star"), 2);
        assert_eq!(ix.doc_freq("ocean"), 1);
        assert_eq!(ix.doc_freq("ghost"), 0);
        assert_eq!(ix.external_id(0), Some("a"));
        assert_eq!(ix.doc_for_external("c"), Some(2));
        assert_eq!(ix.doc_for_external("zzz"), None);
    }

    #[test]
    fn postings_sorted_by_doc() {
        let ix = small_index();
        let ps = ix.postings("star");
        assert!(ps.docs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn term_ids_are_sorted_dense_and_invertible() {
        let ix = small_index();
        // vocabulary: cast drama ocean star trek wars
        assert_eq!(ix.num_terms(), 6);
        let terms: Vec<&str> = ix.terms().collect();
        let mut sorted = terms.clone();
        sorted.sort_unstable();
        assert_eq!(terms, sorted, "TermIds follow lexicographic order");
        for (expect, term) in terms.iter().enumerate() {
            let id = ix.term_id(term).unwrap();
            assert_eq!(id as usize, expect);
            assert_eq!(ix.term(id), Some(*term));
        }
        assert_eq!(ix.term_id("ghost"), None);
        assert_eq!(ix.term(999), None);
    }

    #[test]
    fn csr_view_agrees_with_term_lookup() {
        let ix = small_index();
        assert_eq!(ix.num_postings(), 7); // 3 + 2 + 2 tokens, all distinct per doc
        for term in ["star", "trek", "cast"] {
            let by_name = ix.postings(term);
            let by_id = ix.postings_of(ix.term_id(term).unwrap());
            assert_eq!(by_name.docs, by_id.docs);
            assert_eq!(by_name.weighted_tfs, by_id.weighted_tfs);
            assert_eq!(by_name.len(), ix.doc_freq(term));
            for (i, p) in by_name.iter().enumerate() {
                assert_eq!(by_name.get(i), Some(p));
            }
            assert_eq!(by_name.get(by_name.len()), None);
        }
        assert!(ix.postings_of(TermId::MAX).is_empty());
    }

    #[test]
    fn term_max_tf_lane_matches_postings() {
        let mut b = IndexBuilder::new();
        b.set_field_boost("title", 3.0);
        b.add(
            Document::new("x")
                .field("title", "star")
                .field("body", "star wars wars"),
        );
        b.add(Document::new("y").field("body", "star"));
        let ix = b.build();
        for term in ["star", "wars"] {
            let expect = ix
                .postings(term)
                .weighted_tfs
                .iter()
                .fold(0.0f64, |a, &b| a.max(b));
            assert_eq!(ix.max_weighted_tf(term).to_bits(), expect.to_bits());
            let id = ix.term_id(term).unwrap();
            assert_eq!(ix.max_weighted_tf_of(id).to_bits(), expect.to_bits());
        }
        assert_eq!(ix.max_weighted_tf("star"), 4.0); // 3.0 title + 1.0 body
        assert_eq!(ix.max_weighted_tf("wars"), 2.0);
        assert_eq!(ix.max_weighted_tf("ghost"), 0.0);
        assert_eq!(ix.max_weighted_tf_of(TermId::MAX), 0.0);
    }

    #[test]
    fn doc_lengths_and_average() {
        let ix = small_index();
        assert_eq!(ix.doc_length(0), 3.0);
        assert_eq!(ix.doc_length(1), 2.0);
        assert!((ix.avg_doc_length() - (3.0 + 2.0 + 2.0) / 3.0).abs() < 1e-12);
        assert_eq!(ix.doc_lengths(), &[3.0, 2.0, 2.0]);
    }

    #[test]
    fn doc_length_out_of_range_is_zero_never_a_panic() {
        let ix = small_index();
        assert_eq!(ix.doc_length(3), 0.0);
        assert_eq!(ix.doc_length(DocId::MAX), 0.0);
        assert!(ix.document(3).is_none());
        assert!(ix.external_id(3).is_none());
        // the empty index has no valid id at all
        assert_eq!(IndexBuilder::new().build().doc_length(0), 0.0);
    }

    #[test]
    fn field_boost_scales_tf_and_length() {
        let mut b = IndexBuilder::new();
        b.set_field_boost("title", 3.0);
        b.add(
            Document::new("x")
                .field("title", "star")
                .field("body", "star"),
        );
        let ix = b.build();
        let p = ix.postings("star");
        assert_eq!(p.len(), 1);
        assert_eq!(p.weighted_tfs[0], 4.0);
        assert_eq!(ix.doc_length(0), 4.0);
    }

    #[test]
    fn empty_index() {
        let ix = IndexBuilder::new().build();
        assert_eq!(ix.num_docs(), 0);
        assert_eq!(ix.num_terms(), 0);
        assert_eq!(ix.num_postings(), 0);
        assert_eq!(ix.avg_doc_length(), 0.0);
        assert!(ix.postings("x").is_empty());
    }

    #[test]
    fn duplicate_external_resolves_to_first() {
        let mut b = IndexBuilder::new();
        b.add(Document::new("dup").field("body", "one"));
        b.add(Document::new("dup").field("body", "two"));
        let ix = b.build();
        assert_eq!(ix.doc_for_external("dup"), Some(0));
    }

    #[test]
    fn compress_roundtrip_is_bit_exact() {
        let mut b = IndexBuilder::new();
        b.set_field_boost("title", 2.5); // fractional boost → raw-escape tfs
        b.add(
            Document::new("a")
                .field("title", "star")
                .field("body", "star wars cast"),
        );
        b.add(Document::new("b").field("body", "star trek star"));
        b.add(Document::new("c").field("body", "ocean drama wars"));
        let flat = b.build();
        let mut ix = flat.clone();

        assert_eq!(ix.postings_codec(), PostingsCodec::Flat);
        ix.compress_postings();
        assert_eq!(ix.postings_codec(), PostingsCodec::DeltaVarint);
        ix.compress_postings(); // idempotent

        assert_eq!(ix.num_postings(), flat.num_postings());
        let mut buf = PostingsBuf::new();
        for term in flat.terms() {
            let want = flat.postings(term);
            let got = ix.postings_with(term, &mut buf);
            assert_eq!(got.docs, want.docs, "{term}");
            let want_bits: Vec<u64> = want.weighted_tfs.iter().map(|t| t.to_bits()).collect();
            let got_bits: Vec<u64> = got.weighted_tfs.iter().map(|t| t.to_bits()).collect();
            assert_eq!(got_bits, want_bits, "{term}");
            assert_eq!(ix.doc_freq(term), want.len(), "{term}");
            assert_eq!(
                ix.max_weighted_tf(term).to_bits(),
                flat.max_weighted_tf(term).to_bits()
            );
        }
        assert!(ix.postings_of_with(TermId::MAX, &mut buf).is_empty());
        assert!(ix.postings_with("ghost", &mut buf).is_empty());

        ix.decompress_postings();
        assert_eq!(ix.postings_codec(), PostingsCodec::Flat);
        for term in flat.terms() {
            let want = flat.postings(term);
            let got = ix.postings(term);
            assert_eq!(got.docs, want.docs);
            assert_eq!(got.weighted_tfs, want.weighted_tfs);
        }
    }

    #[test]
    #[should_panic(expected = "compressed index")]
    fn zero_copy_postings_panic_on_compressed_store() {
        let mut ix = small_index();
        ix.compress_postings();
        let _ = ix.postings("star");
    }

    #[test]
    fn flat_reads_work_through_the_buffered_api_too() {
        let ix = small_index();
        let mut buf = PostingsBuf::new();
        let view = ix.postings_with("star", &mut buf);
        assert_eq!(view.docs, ix.postings("star").docs);
        assert!(buf.docs.is_empty(), "flat path must not touch the buffer");
    }

    #[test]
    fn compression_shrinks_the_posting_store() {
        let mut b = IndexBuilder::new();
        for i in 0..500 {
            let body = format!("common w{} w{}", i % 7, i % 31);
            b.add(Document::new(format!("d{i}")).field("body", &body));
        }
        let mut ix = b.build();
        let flat_bytes = ix.posting_store_bytes();
        assert_eq!(flat_bytes, ix.num_postings() * 12);
        ix.compress_postings();
        let packed = ix.posting_store_bytes();
        assert!(
            packed < flat_bytes / 3,
            "expected ≥3× shrink, got {packed} vs {flat_bytes}"
        );
    }

    #[test]
    fn tf_codec_round_trips_awkward_values() {
        // Exercise both tag paths, including values near the inline cutoff.
        let tfs = [
            0.0,
            1.0,
            2.0,
            2.5,
            1e-300,
            1e300,
            f64::INFINITY,
            f64::MAX,
            (MAX_INLINE_TF / 2) as f64,
            9.007199254740993e15, // 2^53 + 1: not exactly representable
        ];
        let docs: Vec<DocId> = (0..tfs.len() as DocId).collect();
        let mut bytes = Vec::new();
        encode_row(&docs, &tfs, &mut bytes);
        let mut buf = PostingsBuf::new();
        decode_row(&bytes, tfs.len(), &mut buf);
        assert_eq!(buf.docs, docs);
        for (got, want) in buf.tfs.iter().zip(&tfs) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn from_raw_parts_rejects_malformed_lanes() {
        let ix = small_index();
        let bad = Index::from_raw_parts(
            ix.analyzer().clone(),
            ix.raw_terms().to_vec(),
            vec![0; ix.raw_offsets().len() + 1],
            ix.raw_store().clone(),
            ix.raw_term_max_tfs().to_vec(),
            ix.raw_blocks().clone(),
            ix.doc_lengths().to_vec(),
            ix.raw_docs().to_vec(),
        );
        assert!(bad.is_err());
        // Malformed block lanes are caught too: a dropped block entry…
        let mut chopped = ix.raw_blocks().clone();
        chopped.max_tfs.pop();
        let bad_blocks = Index::from_raw_parts(
            ix.analyzer().clone(),
            ix.raw_terms().to_vec(),
            ix.raw_offsets().to_vec(),
            ix.raw_store().clone(),
            ix.raw_term_max_tfs().to_vec(),
            chopped,
            ix.doc_lengths().to_vec(),
            ix.raw_docs().to_vec(),
        );
        assert!(bad_blocks.is_err());
        // …and a block size that disagrees with the per-term block counts.
        let mut skewed = ix.raw_blocks().clone();
        skewed.block_size = 1;
        let bad_size = Index::from_raw_parts(
            ix.analyzer().clone(),
            ix.raw_terms().to_vec(),
            ix.raw_offsets().to_vec(),
            ix.raw_store().clone(),
            ix.raw_term_max_tfs().to_vec(),
            skewed,
            ix.doc_lengths().to_vec(),
            ix.raw_docs().to_vec(),
        );
        assert!(bad_size.is_err());
        let good = Index::from_raw_parts(
            ix.analyzer().clone(),
            ix.raw_terms().to_vec(),
            ix.raw_offsets().to_vec(),
            ix.raw_store().clone(),
            ix.raw_term_max_tfs().to_vec(),
            ix.raw_blocks().clone(),
            ix.doc_lengths().to_vec(),
            ix.raw_docs().to_vec(),
        )
        .unwrap();
        assert_eq!(good.num_docs(), ix.num_docs());
        assert_eq!(good.doc_for_external("c"), Some(2));
        assert_eq!(
            good.avg_doc_length().to_bits(),
            ix.avg_doc_length().to_bits()
        );
    }

    /// Reference check of every block-lane invariant against the flat
    /// postings, for any block size.
    fn assert_block_lanes_consistent(ix: &Index) {
        let lanes = ix.raw_blocks();
        let bs = lanes.block_size;
        assert!(bs >= 1);
        assert_eq!(lanes.offsets.len(), ix.num_terms() + 1);
        let mut buf = PostingsBuf::new();
        let mut block_buf = PostingsBuf::new();
        for t in 0..ix.num_terms() as TermId {
            let df = ix.doc_freq_of(t);
            let range = ix.raw_blocks().term_blocks(t as usize);
            assert_eq!(range.len(), df.div_ceil(bs), "term {t} block count");
            // Clone out the full row: `buf` is reborrowed per block below.
            let row = ix.postings_of_with(t, &mut buf);
            let (row_docs, row_tfs) = (row.docs.to_vec(), row.weighted_tfs.to_vec());
            let mut term_max = 0.0f64;
            for (j, b) in range.clone().enumerate() {
                let (start, end) = (j * bs, ((j + 1) * bs).min(df));
                assert_eq!(lanes.first_docs[b], row_docs[start]);
                assert_eq!(lanes.last_docs[b], row_docs[end - 1]);
                let want_max = row_tfs[start..end].iter().fold(0.0f64, |a, &v| a.max(v));
                assert_eq!(lanes.max_tfs[b].to_bits(), want_max.to_bits());
                term_max = term_max.max(want_max);
                // The per-block read hands back exactly this slice.
                let block = ix.block_postings_with(t, b, &mut block_buf);
                assert_eq!(block.docs, &row_docs[start..end]);
                let got: Vec<u64> = block.weighted_tfs.iter().map(|v| v.to_bits()).collect();
                let want: Vec<u64> = row_tfs[start..end].iter().map(|v| v.to_bits()).collect();
                assert_eq!(got, want);
            }
            assert_eq!(term_max.to_bits(), ix.max_weighted_tf_of(t).to_bits());
        }
    }

    fn blocky_index(block_size: usize) -> Index {
        let mut b = IndexBuilder::new();
        b.set_block_size(block_size);
        b.set_field_boost("title", 2.5); // fractional boost → raw-escape tfs
        for i in 0..40 {
            let mut doc = Document::new(format!("d{i}")).field("body", "common filler");
            // "rare" appears once, in one document: a single-posting term.
            if i == 17 {
                doc = doc.field("body2", "rare");
            }
            // The max-weighted posting of "spike" lands in document 39 —
            // the *final* block of its list at small block sizes.
            if i == 39 {
                doc = doc.field("title", "spike").field("body3", "spike spike");
            } else if i % 3 == 0 {
                doc = doc.field("body3", "spike");
            }
            b.add(doc);
        }
        b.build()
    }

    #[test]
    fn block_lanes_respect_any_block_size() {
        // Size 1 (one block per posting), a mid size that splits rows, the
        // default, and a size beyond every list length (one block per term).
        for bs in [1, 4, DEFAULT_BLOCK_SIZE, 10_000] {
            let ix = blocky_index(bs);
            assert_eq!(ix.block_size(), bs);
            assert_block_lanes_consistent(&ix);
            // And the lanes survive the compressed codec bit-for-bit.
            let mut packed = ix.clone();
            packed.compress_postings();
            assert_eq!(packed.raw_blocks().offsets, ix.raw_blocks().offsets);
            assert_block_lanes_consistent(&packed);
            packed.decompress_postings();
            let mut buf = PostingsBuf::new();
            for term in ["common", "rare", "spike"] {
                assert_eq!(
                    packed.postings_with(term, &mut buf).docs.to_vec(),
                    ix.postings(term).docs
                );
            }
        }
    }

    #[test]
    fn single_posting_term_gets_one_single_doc_block() {
        let ix = blocky_index(4);
        let t = ix.term_id("rare").unwrap() as usize;
        let range = ix.raw_blocks().term_blocks(t);
        assert_eq!(range.len(), 1);
        let b = range.start;
        assert_eq!(ix.raw_blocks().first_docs[b], 17);
        assert_eq!(ix.raw_blocks().last_docs[b], 17);
        assert_eq!(ix.raw_blocks().max_tfs[b], 1.0);
    }

    #[test]
    fn max_posting_in_final_block_is_frozen_there() {
        let ix = blocky_index(4);
        let t = ix.term_id("spike").unwrap();
        let range = ix.raw_blocks().term_blocks(t as usize);
        assert!(range.len() > 1, "spike must span several blocks");
        let last = range.end - 1;
        // title boost 2.5 + two body tokens = 4.5, in doc 39 (the last).
        assert_eq!(ix.raw_blocks().max_tfs[last], 4.5);
        assert_eq!(ix.max_weighted_tf("spike"), 4.5);
        assert!(
            ix.raw_blocks().max_tfs[range.start] < 4.5,
            "earlier blocks bound strictly lower"
        );
    }

    #[test]
    fn builder_defaults_and_clamps_block_size() {
        let ix = IndexBuilder::new().build();
        assert_eq!(ix.block_size(), DEFAULT_BLOCK_SIZE);
        let mut b = IndexBuilder::new();
        b.set_block_size(0);
        assert_eq!(b.build().block_size(), 1);
    }

    #[test]
    fn stopwords_not_indexed_by_default() {
        let mut b = IndexBuilder::new();
        b.add(Document::new("x").field("body", "the cast of the movie"));
        let ix = b.build();
        assert_eq!(ix.doc_freq("the"), 0);
        assert_eq!(ix.doc_freq("cast"), 1);
    }
}
