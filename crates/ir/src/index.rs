//! The inverted index: interned term dictionary, CSR postings, document
//! lengths, and stored documents.
//!
//! Field boosts are applied at index time: a token occurring in a field with
//! boost `w` contributes `w` to its weighted term frequency. This keeps the
//! scorer field-agnostic — exactly the "treat qunit instances as plain
//! documents" stance of the paper.
//!
//! # Postings layout
//!
//! Postings are stored as one compressed-sparse-row (CSR) structure of
//! arrays rather than a map of per-term `Vec<Posting>` allocations:
//!
//! ```text
//! term_ids:     "cast" → 0   "star" → 1   "wars" → 2        (dictionary)
//! terms:        ["cast", "star", "wars"]                    (TermId → term)
//! offsets:      [0,      2,      5,     6]                  (len = terms+1)
//!                 \______ \_______ \_____
//! posting_docs: [ 0, 7,  | 0, 3, 7, | 3 ]                   (flat, doc asc)
//! posting_tfs:  [1.0,2.0,|1.0,1.0,3.0|1.0]                  (parallel)
//! ```
//!
//! Term `t`'s postings are the contiguous slices
//! `posting_docs[offsets[t]..offsets[t+1]]` /
//! `posting_tfs[offsets[t]..offsets[t+1]]`. A query resolves each term
//! through the dictionary **once**, then walks two flat arrays — no
//! per-posting hashing, no pointer chasing between heap-allocated lists.
//! [`TermId`]s are assigned by sorted term order at freeze time, so the
//! layout (and everything downstream of it) is a pure function of the
//! indexed content.

use crate::analysis::Analyzer;
use crate::document::{DocId, Document};
use crate::shard::ShardedIndex;
use std::collections::HashMap;

/// Interned id of an indexed term: its rank in the lexicographically sorted
/// vocabulary of one [`Index`]. Dense, 0-based, assigned at freeze time —
/// and therefore **local to its index**: shards of a [`ShardedIndex`] each
/// intern their own vocabulary, so a `TermId` must never cross shards
/// (resolve per shard via [`Index::term_id`]).
pub type TermId = u32;

/// One entry of a postings list (a materialized row of the CSR arrays).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Posting {
    /// Document containing the term.
    pub doc: DocId,
    /// Boost-weighted term frequency.
    pub weighted_tf: f64,
}

/// A borrowed view of one term's postings: two parallel slices into the
/// index's CSR arrays.
///
/// The hot scoring loop iterates `docs`/`weighted_tfs` directly (two linear
/// streams, no per-entry indirection); [`Postings::iter`] materializes
/// [`Posting`] values for callers that want the old row-at-a-time shape.
#[derive(Debug, Clone, Copy)]
pub struct Postings<'a> {
    /// Documents containing the term, ascending.
    pub docs: &'a [DocId],
    /// Boost-weighted term frequencies, parallel to `docs`.
    pub weighted_tfs: &'a [f64],
}

impl<'a> Postings<'a> {
    /// The empty postings list (unknown terms resolve to this).
    pub fn empty() -> Self {
        Postings {
            docs: &[],
            weighted_tfs: &[],
        }
    }

    /// Number of postings (the term's document frequency).
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True iff the term occurs nowhere.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// The `i`-th posting, if in range.
    pub fn get(&self, i: usize) -> Option<Posting> {
        Some(Posting {
            doc: *self.docs.get(i)?,
            weighted_tf: self.weighted_tfs[i],
        })
    }

    /// Iterate the postings as materialized [`Posting`] values.
    pub fn iter(&self) -> impl Iterator<Item = Posting> + 'a {
        (*self).into_iter()
    }
}

impl<'a> IntoIterator for Postings<'a> {
    type Item = Posting;
    type IntoIter = std::iter::Map<
        std::iter::Zip<std::slice::Iter<'a, DocId>, std::slice::Iter<'a, f64>>,
        fn((&DocId, &f64)) -> Posting,
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.docs
            .iter()
            .zip(self.weighted_tfs)
            .map(|(&doc, &weighted_tf)| Posting { doc, weighted_tf })
    }
}

/// An immutable searchable index. Build via [`IndexBuilder`].
///
/// Immutability is load-bearing for the concurrent query path upstream:
/// once built, an `Index` holds plain owned data (no interior mutability),
/// so it is `Send + Sync` and any number of [`crate::Searcher`]s can read
/// it from different threads without locking. The assertion below keeps a
/// future mutation cache from silently revoking that.
///
/// # Document id space
///
/// Every [`DocId`] accepted or returned by this type is **local to this
/// index**: the dense 0-based position at which [`IndexBuilder::add`]
/// received the document. A standalone index's local ids are also its
/// global ids; inside a [`ShardedIndex`] each shard has its own local id
/// space and the sharded wrapper owns the global one — translate with
/// [`ShardedIndex::to_global`] / [`ShardedIndex::to_local`] and never hand
/// a global id to a shard (or vice versa). Out-of-range lookups are always
/// defined, never a panic: [`Index::doc_length`] returns `0.0`,
/// [`Index::document`] and [`Index::external_id`] return `None`.
#[derive(Debug, Clone)]
pub struct Index {
    analyzer: Analyzer,
    /// Term dictionary: analyzed term → interned [`TermId`].
    ///
    /// Deliberately held *beside* the sorted `terms` Vec even though a
    /// binary search over it could answer the same lookups: the dictionary
    /// probe is the entry point of every query term's scoring, and O(1)
    /// hashing beats ~log2(V) cache-missing string compares there. The
    /// price is each term String stored twice; vocabulary is the small
    /// side of an index (postings dominate), so the hot path wins.
    term_ids: HashMap<String, TermId>,
    /// Inverse dictionary: `terms[t]` is the term interned as id `t`.
    /// Sorted — [`TermId`]s are assigned in lexicographic term order.
    terms: Vec<String>,
    /// CSR row offsets: term `t`'s postings span
    /// `offsets[t] .. offsets[t + 1]` in the flat arrays below.
    /// `offsets.len() == terms.len() + 1`; `u32` bounds the index at 4 B
    /// postings (asserted in [`IndexBuilder::build`]).
    offsets: Vec<u32>,
    /// All postings' doc ids, grouped by term, ascending within a term.
    posting_docs: Vec<DocId>,
    /// All postings' weighted term frequencies, parallel to `posting_docs`.
    posting_tfs: Vec<f64>,
    /// Per-term maximum of `posting_tfs` over the term's CSR row, indexed
    /// by [`TermId`] (`term_max_tfs.len() == terms.len()`). Computed at
    /// freeze time so the MaxScore pruned kernel can derive a score upper
    /// bound per query term ([`crate::TermScorer::max_score`]) without
    /// touching the postings. `max` is order-insensitive, so the corpus
    /// aggregate (max over shards) is invariant under shard count.
    term_max_tfs: Vec<f64>,
    doc_lengths: Vec<f64>,
    avg_doc_length: f64,
    docs: Vec<Document>,
    external_to_doc: HashMap<String, DocId>,
}

const fn assert_send_sync<T: Send + Sync>() {}
const _: () = assert_send_sync::<Index>();

impl Index {
    /// Number of documents.
    pub fn num_docs(&self) -> usize {
        self.docs.len()
    }

    /// Vocabulary size (distinct terms).
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Total number of postings across all terms (the CSR arrays' length).
    pub fn num_postings(&self) -> usize {
        self.posting_docs.len()
    }

    /// Interned id of a term (already analyzed form), if indexed. This is
    /// the **one** hash lookup a query term pays; everything after it is
    /// array indexing.
    pub fn term_id(&self, term: &str) -> Option<TermId> {
        self.term_ids.get(term).copied()
    }

    /// The term interned as `id`, if in range.
    pub fn term(&self, id: TermId) -> Option<&str> {
        self.terms.get(id as usize).map(String::as_str)
    }

    /// Postings for a term (already analyzed form): dictionary lookup +
    /// [`Index::postings_of`]. Unknown terms yield the empty view.
    pub fn postings(&self, term: &str) -> Postings<'_> {
        match self.term_id(term) {
            Some(id) => self.postings_of(id),
            None => Postings::empty(),
        }
    }

    /// Postings for an interned term id: two parallel subslices of the CSR
    /// arrays, no hashing. Out-of-range ids yield the empty view (ids only
    /// come from [`Index::term_id`], but total beats panicking).
    pub fn postings_of(&self, id: TermId) -> Postings<'_> {
        let t = id as usize;
        // (compare against terms.len(), not offsets.len() - 1 or t + 1:
        // both alternatives overflow at the extremes on 32-bit targets)
        if t >= self.terms.len() {
            return Postings::empty();
        }
        let (lo, hi) = (self.offsets[t] as usize, self.offsets[t + 1] as usize);
        Postings {
            docs: &self.posting_docs[lo..hi],
            weighted_tfs: &self.posting_tfs[lo..hi],
        }
    }

    /// Document frequency of a term.
    pub fn doc_freq(&self, term: &str) -> usize {
        self.postings(term).len()
    }

    /// Largest boost-weighted term frequency among `id`'s postings — the
    /// freeze-time lane behind [`crate::TermScorer::max_score`]. `0.0` for
    /// out-of-range ids (and thus for any term with no postings).
    pub fn max_weighted_tf_of(&self, id: TermId) -> f64 {
        self.term_max_tfs.get(id as usize).copied().unwrap_or(0.0)
    }

    /// [`Index::max_weighted_tf_of`] by analyzed term (dictionary lookup;
    /// unknown terms yield `0.0`).
    pub fn max_weighted_tf(&self, term: &str) -> f64 {
        self.term_id(term)
            .map_or(0.0, |id| self.max_weighted_tf_of(id))
    }

    /// Boost-weighted length of a document.
    ///
    /// `doc` is a **local** id of this index (see the type-level docs on the
    /// id space). An out-of-range id returns `0.0` — the length of a
    /// document with no tokens — rather than panicking, and the sharded
    /// path ([`ShardedIndex::doc_length`]) honors the same contract for
    /// global ids, so both id spaces degrade identically on bad input.
    pub fn doc_length(&self, doc: DocId) -> f64 {
        self.doc_lengths.get(doc as usize).copied().unwrap_or(0.0)
    }

    /// All document lengths, indexed by local [`DocId`] (the scoring kernel
    /// reads this directly: postings only ever name in-range docs).
    pub fn doc_lengths(&self) -> &[f64] {
        &self.doc_lengths
    }

    /// Mean document length (0 for an empty index).
    pub fn avg_doc_length(&self) -> f64 {
        self.avg_doc_length
    }

    /// The stored document.
    pub fn document(&self, doc: DocId) -> Option<&Document> {
        self.docs.get(doc as usize)
    }

    /// External id of a document.
    pub fn external_id(&self, doc: DocId) -> Option<&str> {
        self.docs.get(doc as usize).map(|d| d.external_id.as_str())
    }

    /// Internal id for an external id.
    pub fn doc_for_external(&self, external: &str) -> Option<DocId> {
        self.external_to_doc.get(external).copied()
    }

    /// The analyzer this index was built with (use it for queries).
    pub fn analyzer(&self) -> &Analyzer {
        &self.analyzer
    }

    /// Every indexed term, in [`TermId`] order (lexicographically sorted).
    pub fn terms(&self) -> impl Iterator<Item = &str> {
        self.terms.iter().map(String::as_str)
    }
}

/// Mutable accumulation of documents into an [`Index`].
#[derive(Debug, Clone)]
pub struct IndexBuilder {
    analyzer: Analyzer,
    field_boosts: HashMap<String, f64>,
    docs: Vec<Document>,
}

impl Default for IndexBuilder {
    fn default() -> Self {
        IndexBuilder::new()
    }
}

impl IndexBuilder {
    /// Builder with the default analyzer and no field boosts.
    pub fn new() -> Self {
        IndexBuilder {
            analyzer: Analyzer::new(),
            field_boosts: HashMap::new(),
            docs: Vec::new(),
        }
    }

    /// Use a custom analyzer.
    pub fn with_analyzer(mut self, analyzer: Analyzer) -> Self {
        self.analyzer = analyzer;
        self
    }

    /// Set the boost of a field (default 1.0).
    pub fn set_field_boost(&mut self, field: impl Into<String>, boost: f64) {
        self.field_boosts.insert(field.into(), boost);
    }

    /// Add a document. Duplicate external ids are allowed but
    /// [`Index::doc_for_external`] will resolve to the first.
    pub fn add(&mut self, doc: Document) -> DocId {
        let id = self.docs.len() as DocId;
        self.docs.push(doc);
        id
    }

    /// Number of documents added so far.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True iff no documents were added.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Freeze into a sharded index of `n` independent [`Index`] shards (at
    /// least one; empty shards are fine when `n` exceeds the corpus).
    ///
    /// Documents partition by **deterministic round-robin over insertion
    /// order**: document `i` goes to shard `i % n` at local position
    /// `i / n`. Insertion order is the only input, so two builders fed the
    /// same documents in the same order shard identically no matter how
    /// many worker threads produced those documents — that, plus the
    /// per-shard [`IndexBuilder::build`] being a pure function of its docs,
    /// is what the CI determinism gate hashes. Round-robin (rather than
    /// contiguous ranges) also balances shard sizes to within one document,
    /// so intra-query fan-out degrades gracefully at any shard count.
    pub fn build_sharded(self, n: usize) -> ShardedIndex {
        let n = n.max(1);
        let mut parts: Vec<IndexBuilder> = (0..n)
            .map(|_| IndexBuilder {
                analyzer: self.analyzer.clone(),
                field_boosts: self.field_boosts.clone(),
                docs: Vec::new(),
            })
            .collect();
        for (i, doc) in self.docs.into_iter().enumerate() {
            parts[i % n].docs.push(doc);
        }
        ShardedIndex::from_shards(parts.into_iter().map(IndexBuilder::build).collect())
    }

    /// Freeze into a searchable index: accumulate per-term postings, then
    /// intern the vocabulary in sorted order and lay the postings out as
    /// one CSR structure of arrays (see the module docs for the layout).
    pub fn build(self) -> Index {
        // Transient per-term lists; flattened into the CSR arrays below.
        let mut lists: HashMap<String, Vec<(DocId, f64)>> = HashMap::new();
        let mut doc_lengths = Vec::with_capacity(self.docs.len());
        let mut external_to_doc = HashMap::with_capacity(self.docs.len());

        // Both per-document scratch buffers survive the loop: `tokens` is
        // refilled in place by tokenize_into, `tf` is cleared but keeps its
        // table allocation.
        let mut tokens: Vec<String> = Vec::new();
        let mut tf: HashMap<String, f64> = HashMap::new();
        for (i, doc) in self.docs.iter().enumerate() {
            let doc_id = i as DocId;
            external_to_doc
                .entry(doc.external_id.clone())
                .or_insert(doc_id);

            let mut length = 0.0;
            for (field, text) in &doc.fields {
                let boost = self.field_boosts.get(field).copied().unwrap_or(1.0);
                self.analyzer.tokenize_into(text, &mut tokens);
                for tok in tokens.drain(..) {
                    *tf.entry(tok).or_insert(0.0) += boost;
                    length += boost;
                }
            }
            doc_lengths.push(length);
            for (term, &weighted_tf) in &tf {
                match lists.get_mut(term) {
                    Some(list) => list.push((doc_id, weighted_tf)),
                    None => {
                        lists.insert(term.clone(), vec![(doc_id, weighted_tf)]);
                    }
                }
            }
            tf.clear();
        }

        // Intern terms in sorted order: TermId assignment must be a pure
        // function of the content (HashMap iteration order is not), and the
        // sort clusters prefix-sharing terms' postings for locality.
        let mut entries: Vec<(String, Vec<(DocId, f64)>)> = lists.into_iter().collect();
        entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));

        let total: usize = entries.iter().map(|(_, l)| l.len()).sum();
        assert!(
            total <= u32::MAX as usize,
            "CSR offsets are u32: index exceeds 4B postings"
        );
        let mut term_ids = HashMap::with_capacity(entries.len());
        let mut terms = Vec::with_capacity(entries.len());
        let mut offsets = Vec::with_capacity(entries.len() + 1);
        let mut posting_docs = Vec::with_capacity(total);
        let mut posting_tfs = Vec::with_capacity(total);
        let mut term_max_tfs = Vec::with_capacity(entries.len());
        offsets.push(0u32);
        for (term, mut list) in entries {
            term_ids.insert(term.clone(), terms.len() as TermId);
            terms.push(term);
            // Documents were scanned in id order, so each list arrives
            // sorted by doc — but the binary searches in score_doc and the
            // ascending-docs contract of `Postings` lean on this, so keep
            // enforcing it (O(n) on already-sorted input) rather than
            // trusting future mutation paths to preserve it.
            list.sort_unstable_by_key(|&(doc, _)| doc);
            let mut max_tf = 0.0f64;
            for (doc, weighted_tf) in list {
                posting_docs.push(doc);
                posting_tfs.push(weighted_tf);
                max_tf = max_tf.max(weighted_tf);
            }
            term_max_tfs.push(max_tf);
            offsets.push(posting_docs.len() as u32);
        }

        let avg_doc_length = if doc_lengths.is_empty() {
            0.0
        } else {
            doc_lengths.iter().sum::<f64>() / doc_lengths.len() as f64
        };
        Index {
            analyzer: self.analyzer,
            term_ids,
            terms,
            offsets,
            posting_docs,
            posting_tfs,
            term_max_tfs,
            doc_lengths,
            avg_doc_length,
            docs: self.docs,
            external_to_doc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_index() -> Index {
        let mut b = IndexBuilder::new();
        b.add(Document::new("a").field("body", "star wars cast"));
        b.add(Document::new("b").field("body", "star trek"));
        b.add(Document::new("c").field("body", "ocean drama"));
        b.build()
    }

    #[test]
    fn counts_and_lookup() {
        let ix = small_index();
        assert_eq!(ix.num_docs(), 3);
        assert_eq!(ix.doc_freq("star"), 2);
        assert_eq!(ix.doc_freq("ocean"), 1);
        assert_eq!(ix.doc_freq("ghost"), 0);
        assert_eq!(ix.external_id(0), Some("a"));
        assert_eq!(ix.doc_for_external("c"), Some(2));
        assert_eq!(ix.doc_for_external("zzz"), None);
    }

    #[test]
    fn postings_sorted_by_doc() {
        let ix = small_index();
        let ps = ix.postings("star");
        assert!(ps.docs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn term_ids_are_sorted_dense_and_invertible() {
        let ix = small_index();
        // vocabulary: cast drama ocean star trek wars
        assert_eq!(ix.num_terms(), 6);
        let terms: Vec<&str> = ix.terms().collect();
        let mut sorted = terms.clone();
        sorted.sort_unstable();
        assert_eq!(terms, sorted, "TermIds follow lexicographic order");
        for (expect, term) in terms.iter().enumerate() {
            let id = ix.term_id(term).unwrap();
            assert_eq!(id as usize, expect);
            assert_eq!(ix.term(id), Some(*term));
        }
        assert_eq!(ix.term_id("ghost"), None);
        assert_eq!(ix.term(999), None);
    }

    #[test]
    fn csr_view_agrees_with_term_lookup() {
        let ix = small_index();
        assert_eq!(ix.num_postings(), 7); // 3 + 2 + 2 tokens, all distinct per doc
        for term in ["star", "trek", "cast"] {
            let by_name = ix.postings(term);
            let by_id = ix.postings_of(ix.term_id(term).unwrap());
            assert_eq!(by_name.docs, by_id.docs);
            assert_eq!(by_name.weighted_tfs, by_id.weighted_tfs);
            assert_eq!(by_name.len(), ix.doc_freq(term));
            for (i, p) in by_name.iter().enumerate() {
                assert_eq!(by_name.get(i), Some(p));
            }
            assert_eq!(by_name.get(by_name.len()), None);
        }
        assert!(ix.postings_of(TermId::MAX).is_empty());
    }

    #[test]
    fn term_max_tf_lane_matches_postings() {
        let mut b = IndexBuilder::new();
        b.set_field_boost("title", 3.0);
        b.add(
            Document::new("x")
                .field("title", "star")
                .field("body", "star wars wars"),
        );
        b.add(Document::new("y").field("body", "star"));
        let ix = b.build();
        for term in ["star", "wars"] {
            let expect = ix
                .postings(term)
                .weighted_tfs
                .iter()
                .fold(0.0f64, |a, &b| a.max(b));
            assert_eq!(ix.max_weighted_tf(term).to_bits(), expect.to_bits());
            let id = ix.term_id(term).unwrap();
            assert_eq!(ix.max_weighted_tf_of(id).to_bits(), expect.to_bits());
        }
        assert_eq!(ix.max_weighted_tf("star"), 4.0); // 3.0 title + 1.0 body
        assert_eq!(ix.max_weighted_tf("wars"), 2.0);
        assert_eq!(ix.max_weighted_tf("ghost"), 0.0);
        assert_eq!(ix.max_weighted_tf_of(TermId::MAX), 0.0);
    }

    #[test]
    fn doc_lengths_and_average() {
        let ix = small_index();
        assert_eq!(ix.doc_length(0), 3.0);
        assert_eq!(ix.doc_length(1), 2.0);
        assert!((ix.avg_doc_length() - (3.0 + 2.0 + 2.0) / 3.0).abs() < 1e-12);
        assert_eq!(ix.doc_lengths(), &[3.0, 2.0, 2.0]);
    }

    #[test]
    fn doc_length_out_of_range_is_zero_never_a_panic() {
        let ix = small_index();
        assert_eq!(ix.doc_length(3), 0.0);
        assert_eq!(ix.doc_length(DocId::MAX), 0.0);
        assert!(ix.document(3).is_none());
        assert!(ix.external_id(3).is_none());
        // the empty index has no valid id at all
        assert_eq!(IndexBuilder::new().build().doc_length(0), 0.0);
    }

    #[test]
    fn field_boost_scales_tf_and_length() {
        let mut b = IndexBuilder::new();
        b.set_field_boost("title", 3.0);
        b.add(
            Document::new("x")
                .field("title", "star")
                .field("body", "star"),
        );
        let ix = b.build();
        let p = ix.postings("star");
        assert_eq!(p.len(), 1);
        assert_eq!(p.weighted_tfs[0], 4.0);
        assert_eq!(ix.doc_length(0), 4.0);
    }

    #[test]
    fn empty_index() {
        let ix = IndexBuilder::new().build();
        assert_eq!(ix.num_docs(), 0);
        assert_eq!(ix.num_terms(), 0);
        assert_eq!(ix.num_postings(), 0);
        assert_eq!(ix.avg_doc_length(), 0.0);
        assert!(ix.postings("x").is_empty());
    }

    #[test]
    fn duplicate_external_resolves_to_first() {
        let mut b = IndexBuilder::new();
        b.add(Document::new("dup").field("body", "one"));
        b.add(Document::new("dup").field("body", "two"));
        let ix = b.build();
        assert_eq!(ix.doc_for_external("dup"), Some(0));
    }

    #[test]
    fn stopwords_not_indexed_by_default() {
        let mut b = IndexBuilder::new();
        b.add(Document::new("x").field("body", "the cast of the movie"));
        let ix = b.build();
        assert_eq!(ix.doc_freq("the"), 0);
        assert_eq!(ix.doc_freq("cast"), 1);
    }
}
