//! Deterministic failpoint registry: named injection sites threaded into
//! the hot paths that can fail in production, each able to inject an
//! **error**, a **panic**, or a **delay** on a reproducible schedule.
//!
//! Production code never fails on purpose — which means the containment
//! machinery around it (panic isolation in [`crate::ShardExecutor`], the
//! engine's degraded-answer path, snapshot quarantine) is exactly the code
//! that ships least tested. Failpoints make faults a *first-class, seeded
//! input*: a chaos test installs a schedule, runs real queries, and the
//! same schedule provokes the same faults at the same site hit ordinals
//! every run.
//!
//! # Zero cost when disarmed
//!
//! Every site compiles to one relaxed [`AtomicBool`] load and a predictable
//! not-taken branch when no schedule is installed — no lock, no allocation,
//! no counter traffic. The registry only exists behind that branch, so the
//! scoring kernel, the executor, and the snapshot codec pay nothing in
//! normal operation (the bench-smoke CI gate holds the scoring numbers to
//! the no-failpoint baseline).
//!
//! # Schedule syntax
//!
//! A schedule is `;`-separated clauses, each `site=action@trigger`:
//!
//! - **site** — one of the [`site`] constants (e.g. `exec.task`).
//! - **action** — `error` (the site returns [`InjectedFault`], mapped to
//!   its native error type), `panic` (the site panics with a payload
//!   naming the site), or `delay:<ms>` (the site sleeps, for provoking
//!   deadline trips and queue buildup).
//! - **trigger** — `#<n>` fires on the n-th hit of the site only
//!   (1-based), `%<p>` fires on every p-th hit, `*` (or omitted) fires on
//!   every hit.
//!
//! Example: `exec.task=panic@#3;kernel.checkpoint=delay:2@%64` panics the
//! third executor task and sleeps 2ms every 64th kernel checkpoint.
//!
//! Hit counters are per-site and process-global, so a schedule is
//! deterministic in terms of site-hit ordinals: a single-threaded workload
//! replays exactly; a concurrent one provokes the same *set* of faults at
//! the same ordinals even though which query observes them may vary.
//!
//! The registry is process-global (sites are reached from deep kernel code
//! with no context parameter to spare on the hot path). [`install`]
//! replaces the whole schedule atomically; [`clear`] disarms every site.
//! Tests that install schedules must serialize with each other.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// The named injection sites. Each constant is referenced by the schedule
/// syntax and embedded in injected panic payloads / error messages.
pub mod site {
    /// Snapshot file read ([`crate::ShardedIndex::load_snapshot`]): fires
    /// before the header is parsed; `error` surfaces as a transient
    /// `SnapshotError::Io`.
    pub const SNAPSHOT_READ: &str = "snapshot.read";
    /// Snapshot file write ([`crate::ShardedIndex::save_snapshot`]):
    /// fires before the tmp-file rename; `error` surfaces as
    /// `SnapshotError::Io`.
    pub const SNAPSHOT_WRITE: &str = "snapshot.write";
    /// Posting-block decode (compressed codec block expansion). The
    /// decode path is infallible, so `error` escalates to a panic.
    pub const POSTINGS_DECODE: &str = "postings.decode";
    /// Executor batch admission ([`crate::ShardExecutor`] `run`/`try_run`):
    /// `error` forces the whole batch onto the calling thread (as if the
    /// queue were full); `panic` unwinds the submitting caller.
    pub const EXEC_ENQUEUE: &str = "exec.enqueue";
    /// Executor task body, evaluated on the executing worker/helper just
    /// before the job runs. `error` escalates to a panic (a task has no
    /// error channel); the panic is caught by the task's `catch_unwind`.
    pub const EXEC_TASK: &str = "exec.task";
    /// Scoring-kernel accumulate checkpoint (the same cadence as the
    /// cooperative cancel probe, every [`crate::CANCEL_POSTING_BUDGET`]
    /// postings). `error` surfaces as [`crate::Cancelled`] — a
    /// deterministic mid-kernel trip.
    pub const KERNEL_CHECKPOINT: &str = "kernel.checkpoint";

    /// Every site name, for validation and docs.
    pub const ALL: &[&str] = &[
        SNAPSHOT_READ,
        SNAPSHOT_WRITE,
        POSTINGS_DECODE,
        EXEC_ENQUEUE,
        EXEC_TASK,
        KERNEL_CHECKPOINT,
    ];
}

/// An `error`-action failpoint fired. Sites map this into their native
/// error type (`SnapshotError::Io`, [`crate::Cancelled`], …); sites with no
/// error channel escalate it to a panic via [`check_infallible`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// The site that fired.
    pub site: &'static str,
}

impl std::fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected fault at {}", self.site)
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Action {
    Error,
    Panic,
    Delay(Duration),
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Trigger {
    /// Fire on the n-th hit only (1-based).
    Nth(u64),
    /// Fire on every p-th hit (hit % p == 0).
    Every(u64),
    /// Fire on every hit.
    Always,
}

impl Trigger {
    fn fires(self, hit: u64) -> bool {
        match self {
            Trigger::Nth(n) => hit == n,
            Trigger::Every(p) => hit.is_multiple_of(p),
            Trigger::Always => true,
        }
    }
}

#[derive(Debug)]
struct Clause {
    action: Action,
    trigger: Trigger,
}

#[derive(Debug)]
struct SiteState {
    site: &'static str,
    /// Total evaluations of this site while the schedule was armed.
    hits: AtomicU64,
    /// Total clause firings at this site.
    fired: AtomicU64,
    clauses: Vec<Clause>,
}

#[derive(Debug, Default)]
struct Schedule {
    sites: Vec<SiteState>,
}

/// One relaxed load on every site evaluation — the entire disarmed cost.
static ARMED: AtomicBool = AtomicBool::new(false);
static SCHEDULE: Mutex<Option<std::sync::Arc<Schedule>>> = Mutex::new(None);

fn canonical_site(name: &str) -> Option<&'static str> {
    site::ALL.iter().copied().find(|s| *s == name)
}

fn parse(spec: &str) -> Result<Schedule, String> {
    let mut schedule = Schedule::default();
    for clause in spec.split(';').map(str::trim).filter(|c| !c.is_empty()) {
        let (site_name, rest) = clause.split_once('=').ok_or_else(|| {
            format!("fault clause {clause:?} is missing '=' (site=action@trigger)")
        })?;
        let site = canonical_site(site_name.trim()).ok_or_else(|| {
            format!(
                "unknown fault site {:?} (known: {:?})",
                site_name.trim(),
                site::ALL
            )
        })?;
        let (action_str, trigger_str) = match rest.split_once('@') {
            Some((a, t)) => (a.trim(), Some(t.trim())),
            None => (rest.trim(), None),
        };
        let action = if action_str == "error" {
            Action::Error
        } else if action_str == "panic" {
            Action::Panic
        } else if let Some(ms) = action_str.strip_prefix("delay:") {
            let ms: u64 = ms
                .parse()
                .map_err(|_| format!("fault delay {ms:?} is not a millisecond count"))?;
            Action::Delay(Duration::from_millis(ms))
        } else {
            return Err(format!(
                "unknown fault action {action_str:?} (want error | panic | delay:<ms>)"
            ));
        };
        let trigger = match trigger_str {
            None | Some("*") => Trigger::Always,
            Some(t) => {
                if let Some(n) = t.strip_prefix('#') {
                    let n: u64 = n
                        .parse()
                        .map_err(|_| format!("fault trigger {t:?}: #<n> needs an integer"))?;
                    if n == 0 {
                        return Err("fault trigger #0 never fires (hits are 1-based)".into());
                    }
                    Trigger::Nth(n)
                } else if let Some(p) = t.strip_prefix('%') {
                    let p: u64 = p
                        .parse()
                        .map_err(|_| format!("fault trigger {t:?}: %<p> needs an integer"))?;
                    if p == 0 {
                        return Err("fault trigger %0 would divide by zero".into());
                    }
                    Trigger::Every(p)
                } else {
                    return Err(format!(
                        "unknown fault trigger {t:?} (want #<n> | %<p> | *)"
                    ));
                }
            }
        };
        let clause = Clause { action, trigger };
        match schedule.sites.iter_mut().find(|s| s.site == site) {
            Some(state) => state.clauses.push(clause),
            None => schedule.sites.push(SiteState {
                site,
                hits: AtomicU64::new(0),
                fired: AtomicU64::new(0),
                clauses: vec![clause],
            }),
        }
    }
    Ok(schedule)
}

/// Install a fault schedule (see the [module docs](self) for the syntax),
/// replacing any previous one and resetting all hit counters. An empty
/// spec disarms every site, exactly like [`clear`]. Returns a description
/// of the first malformed clause on parse failure (the previous schedule
/// stays installed).
pub fn install(spec: &str) -> Result<(), String> {
    let schedule = parse(spec)?;
    let armed = !schedule.sites.is_empty();
    let mut guard = SCHEDULE.lock().unwrap_or_else(|e| e.into_inner());
    *guard = armed.then(|| std::sync::Arc::new(schedule));
    ARMED.store(armed, Ordering::Relaxed);
    Ok(())
}

/// Disarm every failpoint and drop the schedule. Safe to call when nothing
/// is installed.
pub fn clear() {
    let mut guard = SCHEDULE.lock().unwrap_or_else(|e| e.into_inner());
    *guard = None;
    ARMED.store(false, Ordering::Relaxed);
}

/// True iff a schedule is installed. The disarmed fast path of every site.
#[inline(always)]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// `(hits, fired)` counters for a site under the current schedule, or
/// `(0, 0)` when the site has no clauses. Test/diagnostic API.
pub fn site_counters(site_name: &str) -> (u64, u64) {
    let guard = SCHEDULE.lock().unwrap_or_else(|e| e.into_inner());
    match guard
        .as_ref()
        .and_then(|s| s.sites.iter().find(|st| st.site == site_name))
    {
        Some(st) => (
            st.hits.load(Ordering::Relaxed),
            st.fired.load(Ordering::Relaxed),
        ),
        None => (0, 0),
    }
}

/// Evaluate the failpoint at `site_name`. The disarmed path is one relaxed
/// atomic load. When armed: a matching `delay` clause sleeps, a matching
/// `panic` clause panics with a payload naming the site, and a matching
/// `error` clause returns `Err(InjectedFault)` for the caller to map into
/// its native error type.
#[inline(always)]
pub fn check(site_name: &'static str) -> Result<(), InjectedFault> {
    if !armed() {
        return Ok(());
    }
    check_slow(site_name)
}

/// [`check`] for sites with no error channel: an `error` clause escalates
/// to the same site-tagged panic a `panic` clause raises, so every action
/// stays expressible at every site.
#[inline(always)]
pub fn check_infallible(site_name: &'static str) {
    if let Err(f) = check(site_name) {
        panic!("{f}");
    }
}

#[cold]
fn check_slow(site_name: &'static str) -> Result<(), InjectedFault> {
    let schedule = {
        let guard = SCHEDULE.lock().unwrap_or_else(|e| e.into_inner());
        match guard.as_ref() {
            Some(s) => std::sync::Arc::clone(s),
            None => return Ok(()),
        }
    };
    let Some(state) = schedule.sites.iter().find(|s| s.site == site_name) else {
        return Ok(());
    };
    let hit = state.hits.fetch_add(1, Ordering::Relaxed) + 1;
    for clause in &state.clauses {
        if !clause.trigger.fires(hit) {
            continue;
        }
        state.fired.fetch_add(1, Ordering::Relaxed);
        match clause.action {
            Action::Delay(d) => std::thread::sleep(d),
            Action::Panic => panic!("{}", InjectedFault { site: site_name }),
            Action::Error => return Err(InjectedFault { site: site_name }),
        }
    }
    Ok(())
}

/// The registry is process-global; any in-crate test that installs a
/// schedule takes this lock so tests cannot interleave (also used by the
/// kernel-checkpoint test in [`crate::search`]).
#[cfg(test)]
pub(crate) fn registry_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static TEST_LOCK: Mutex<()> = Mutex::new(());
    TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    fn exclusive() -> MutexGuard<'static, ()> {
        registry_test_lock()
    }

    #[test]
    fn disarmed_checks_are_free_and_ok() {
        let _g = exclusive();
        clear();
        assert!(!armed());
        assert_eq!(check(site::EXEC_TASK), Ok(()));
        check_infallible(site::POSTINGS_DECODE);
        assert_eq!(site_counters(site::EXEC_TASK), (0, 0));
    }

    #[test]
    fn nth_trigger_fires_exactly_once() {
        let _g = exclusive();
        install("snapshot.read=error@#3").unwrap();
        assert_eq!(check(site::SNAPSHOT_READ), Ok(()));
        assert_eq!(check(site::SNAPSHOT_READ), Ok(()));
        assert_eq!(
            check(site::SNAPSHOT_READ),
            Err(InjectedFault {
                site: site::SNAPSHOT_READ
            })
        );
        assert_eq!(check(site::SNAPSHOT_READ), Ok(()));
        assert_eq!(site_counters(site::SNAPSHOT_READ), (4, 1));
        clear();
    }

    #[test]
    fn every_trigger_fires_periodically() {
        let _g = exclusive();
        install("snapshot.read=error@%2").unwrap();
        let fired: Vec<bool> = (0..6)
            .map(|_| check(site::SNAPSHOT_READ).is_err())
            .collect();
        assert_eq!(fired, [false, true, false, true, false, true]);
        clear();
    }

    #[test]
    fn panic_action_carries_the_site_name() {
        let _g = exclusive();
        install("snapshot.read=panic@#1").unwrap();
        let payload = std::panic::catch_unwind(|| check(site::SNAPSHOT_READ)).unwrap_err();
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("snapshot.read"), "{msg}");
        clear();
    }

    #[test]
    fn infallible_sites_escalate_error_to_panic() {
        let _g = exclusive();
        install("snapshot.write=error").unwrap();
        let payload =
            std::panic::catch_unwind(|| check_infallible(site::SNAPSHOT_WRITE)).unwrap_err();
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("snapshot.write"), "{msg}");
        clear();
    }

    #[test]
    fn delay_action_sleeps_and_returns_ok() {
        let _g = exclusive();
        install("snapshot.read=delay:5@#1").unwrap();
        let start = std::time::Instant::now();
        assert_eq!(check(site::SNAPSHOT_READ), Ok(()));
        assert!(start.elapsed() >= Duration::from_millis(5));
        assert_eq!(check(site::SNAPSHOT_READ), Ok(()));
        clear();
    }

    #[test]
    fn install_replaces_and_resets_counters() {
        let _g = exclusive();
        install("snapshot.read=error").unwrap();
        let _ = check(site::SNAPSHOT_READ);
        install("snapshot.read=error@#100").unwrap();
        assert_eq!(site_counters(site::SNAPSHOT_READ), (0, 0));
        assert_eq!(check(site::SNAPSHOT_READ), Ok(()));
        clear();
    }

    #[test]
    fn empty_spec_disarms() {
        let _g = exclusive();
        install("snapshot.read=error").unwrap();
        assert!(armed());
        install("").unwrap();
        assert!(!armed());
    }

    #[test]
    fn malformed_specs_are_rejected_verbosely() {
        let _g = exclusive();
        clear();
        for bad in [
            "exec.task",
            "nonsense.site=error",
            "exec.task=explode",
            "exec.task=delay:soon",
            "exec.task=error@!7",
            "exec.task=error@#0",
            "exec.task=error@%0",
        ] {
            let err = install(bad).unwrap_err();
            assert!(!err.is_empty(), "{bad}");
            assert!(!armed(), "failed install must not arm ({bad})");
        }
    }

    #[test]
    fn multiple_clauses_per_site_and_multiple_sites() {
        let _g = exclusive();
        install("snapshot.read=error@#1; snapshot.read=error@#3 ;snapshot.write=error@*").unwrap();
        assert!(check(site::SNAPSHOT_READ).is_err());
        assert!(check(site::SNAPSHOT_READ).is_ok());
        assert!(check(site::SNAPSHOT_READ).is_err());
        assert!(check(site::SNAPSHOT_WRITE).is_err());
        assert!(check(site::SNAPSHOT_WRITE).is_err());
        clear();
    }
}
