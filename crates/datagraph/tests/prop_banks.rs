//! Property tests for the data graph and BANKS on randomized databases.

use datagraph::{BanksConfig, BanksEngine, DataGraph};
use proptest::prelude::*;
use relstore::{ColumnDef, DataType, Database, TableSchema};

fn build_db(people: &[(i64, u8)], movies: &[(i64, u8)], casts: &[(i64, i64)]) -> Database {
    const NAMES: &[&str] = &["alpha bravo", "charlie delta", "echo foxtrot", "golf hotel"];
    const TITLES: &[&str] = &["star wars", "ocean drama", "night city", "silent storm"];
    let mut db = Database::new("prop");
    db.set_enforce_fk(false);
    db.create_table(
        TableSchema::new("person")
            .column(ColumnDef::new("id", DataType::Int).not_null())
            .column(ColumnDef::new("name", DataType::Text))
            .primary_key("id"),
    )
    .unwrap();
    db.create_table(
        TableSchema::new("movie")
            .column(ColumnDef::new("id", DataType::Int).not_null())
            .column(ColumnDef::new("title", DataType::Text))
            .primary_key("id"),
    )
    .unwrap();
    db.create_table(
        TableSchema::new("cast")
            .column(ColumnDef::new("person_id", DataType::Int))
            .column(ColumnDef::new("movie_id", DataType::Int))
            .foreign_key("person_id", "person", "id")
            .foreign_key("movie_id", "movie", "id"),
    )
    .unwrap();
    let mut seen = std::collections::HashSet::new();
    for &(id, n) in people {
        if seen.insert(id) {
            db.insert(
                "person",
                vec![id.into(), NAMES[n as usize % NAMES.len()].into()],
            )
            .unwrap();
        }
    }
    let mut seen = std::collections::HashSet::new();
    for &(id, t) in movies {
        if seen.insert(id) {
            db.insert(
                "movie",
                vec![id.into(), TITLES[t as usize % TITLES.len()].into()],
            )
            .unwrap();
        }
    }
    for &(p, m) in casts {
        db.insert("cast", vec![p.into(), m.into()]).unwrap();
    }
    db
}

prop_compose! {
    fn db_strategy()(
        people in prop::collection::vec((0i64..8, 0u8..4), 1..8),
        movies in prop::collection::vec((0i64..8, 0u8..4), 1..8),
        casts in prop::collection::vec((0i64..8, 0i64..8), 0..16),
    ) -> Database {
        build_db(&people, &movies, &casts)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn graph_counts_match_database(db in db_strategy()) {
        let g = DataGraph::build(&db);
        prop_assert_eq!(g.num_nodes(), db.total_rows());
        // every edge endpoint is a valid node and adjacency is symmetric
        for n in 0..g.num_nodes() as u32 {
            for &m in g.neighbors(n) {
                prop_assert!((m as usize) < g.num_nodes());
                prop_assert!(g.neighbors(m).contains(&n));
            }
        }
    }

    #[test]
    fn answer_trees_contain_all_keywords(db in db_strategy(),
        q in prop::sample::select(vec!["star wars", "alpha ocean", "charlie storm", "echo"])) {
        let g = DataGraph::build(&db);
        let engine = BanksEngine::new(&g, BanksConfig::default());
        let keywords = relstore::index::tokenize(q);
        for tree in engine.search(q) {
            for kw in &keywords {
                let matches = g.nodes_matching(kw);
                prop_assert!(
                    tree.nodes.iter().any(|n| matches.contains(n)),
                    "tree misses keyword {kw}"
                );
            }
        }
    }

    #[test]
    fn answer_trees_are_connected(db in db_strategy(),
        q in prop::sample::select(vec!["star alpha", "ocean charlie", "night echo"])) {
        let g = DataGraph::build(&db);
        let engine = BanksEngine::new(&g, BanksConfig { top_k: 20, max_depth: 6 });
        for tree in engine.search(q) {
            let mut seen = std::collections::HashSet::from([tree.root]);
            let mut frontier = vec![tree.root];
            while let Some(u) = frontier.pop() {
                for &(x, y) in &tree.edges {
                    for (a, b) in [(x, y), (y, x)] {
                        if a == u && seen.insert(b) {
                            frontier.push(b);
                        }
                    }
                }
            }
            for n in &tree.nodes {
                prop_assert!(seen.contains(n), "disconnected node {n}");
            }
        }
    }

    #[test]
    fn conjunctive_semantics(db in db_strategy()) {
        let g = DataGraph::build(&db);
        let engine = BanksEngine::new(&g, BanksConfig::default());
        // a keyword outside the vocabulary must empty any query
        prop_assert!(engine.search("star zzzznothing").is_empty());
        prop_assert!(engine.search("").is_empty());
    }

    #[test]
    fn scores_sorted_and_finite(db in db_strategy()) {
        let g = DataGraph::build(&db);
        let engine = BanksEngine::new(&g, BanksConfig { top_k: 50, max_depth: 6 });
        let answers = engine.search("star alpha");
        prop_assert!(answers.windows(2).all(|w| w[0].score >= w[1].score));
        for a in &answers {
            prop_assert!(a.score.is_finite() && a.score > 0.0);
        }
    }

    #[test]
    fn prestige_nonnegative_and_monotone_in_indegree(db in db_strategy()) {
        let g = DataGraph::build(&db);
        for n in 0..g.num_nodes() as u32 {
            prop_assert!(g.prestige(n) >= 0.0);
        }
    }
}
