//! The tuple data graph: one node per live row, one undirected edge per
//! foreign-key reference between rows, plus a keyword → nodes index.

use relstore::{index::tokenize, Database, RowId, TableId, Value};
use std::collections::HashMap;

/// Dense node identifier.
pub type NodeId = u32;

/// What a node stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeInfo {
    /// Owning table.
    pub table: TableId,
    /// Row within the table.
    pub row: RowId,
}

/// The materialized data graph.
#[derive(Debug, Clone)]
pub struct DataGraph {
    nodes: Vec<NodeInfo>,
    node_of: HashMap<(TableId, RowId), NodeId>,
    adj: Vec<Vec<NodeId>>,
    indegree: Vec<u32>,
    keyword_index: HashMap<String, Vec<NodeId>>,
}

impl DataGraph {
    /// Build the graph from a database: every live row becomes a node; every
    /// non-null FK value that resolves to a referenced row becomes an edge.
    /// Every text column feeds the keyword index.
    pub fn build(db: &Database) -> Self {
        let mut nodes = Vec::new();
        let mut node_of = HashMap::new();
        for (tid, _) in db.catalog().iter() {
            let table = db.table(tid).expect("catalog/storage agree");
            for (rid, _) in table.scan() {
                let id = nodes.len() as NodeId;
                nodes.push(NodeInfo {
                    table: tid,
                    row: rid,
                });
                node_of.insert((tid, rid), id);
            }
        }

        let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); nodes.len()];
        let mut indegree: Vec<u32> = vec![0; nodes.len()];
        for edge in db.catalog().edges() {
            let from_table = db.table(edge.from_table).expect("valid");
            let to_table = db.table(edge.to_table).expect("valid");
            let to_is_pk = to_table.schema().primary_key == Some(edge.to_column);
            for (rid, row) in from_table.scan() {
                let v = match row.get(edge.from_column) {
                    Some(v) if !v.is_null() => v,
                    _ => continue,
                };
                let targets: Vec<RowId> = if to_is_pk {
                    to_table.lookup_pk(v).into_iter().collect()
                } else {
                    to_table.find_equal(edge.to_column, v)
                };
                let from_node = node_of[&(edge.from_table, rid)];
                for t in targets {
                    let to_node = node_of[&(edge.to_table, t)];
                    adj[from_node as usize].push(to_node);
                    adj[to_node as usize].push(from_node);
                    // prestige: references *into* a node raise its indegree
                    indegree[to_node as usize] += 1;
                }
            }
        }

        let mut keyword_index: HashMap<String, Vec<NodeId>> = HashMap::new();
        for (nid, info) in nodes.iter().enumerate() {
            let table = db.table(info.table).expect("valid");
            let row = table.row(info.row).expect("live");
            let mut toks: Vec<String> = Vec::new();
            for v in row.iter() {
                if let Some(s) = v.as_text() {
                    toks.extend(tokenize(s));
                }
            }
            toks.sort_unstable();
            toks.dedup();
            for t in toks {
                keyword_index.entry(t).or_default().push(nid as NodeId);
            }
        }

        DataGraph {
            nodes,
            node_of,
            adj,
            indegree,
            keyword_index,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Node payload.
    pub fn info(&self, node: NodeId) -> NodeInfo {
        self.nodes[node as usize]
    }

    /// Node for a `(table, row)` pair.
    pub fn node(&self, table: TableId, row: RowId) -> Option<NodeId> {
        self.node_of.get(&(table, row)).copied()
    }

    /// Neighbors of a node.
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.adj[node as usize]
    }

    /// Nodes whose row text contains `token` (lower-cased lookup).
    pub fn nodes_matching(&self, token: &str) -> &[NodeId] {
        self.keyword_index
            .get(&token.to_lowercase())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// BANKS-style node prestige: `ln(1 + indegree)`.
    pub fn prestige(&self, node: NodeId) -> f64 {
        (1.0 + self.indegree[node as usize] as f64).ln()
    }

    /// Render a node as `table(rowvalues…)` for display.
    pub fn describe(&self, db: &Database, node: NodeId) -> String {
        let info = self.info(node);
        let schema = db.catalog().table(info.table).expect("valid");
        let table = db.table(info.table).expect("valid");
        let row = table.row(info.row).expect("live");
        let vals: Vec<String> = row.iter().map(Value::display_plain).collect();
        format!("{}({})", schema.name, vals.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::{ColumnDef, DataType, TableSchema};

    fn tiny_db() -> Database {
        let mut db = Database::new("d");
        db.create_table(
            TableSchema::new("person")
                .column(ColumnDef::new("id", DataType::Int).not_null())
                .column(ColumnDef::new("name", DataType::Text))
                .primary_key("id"),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("movie")
                .column(ColumnDef::new("id", DataType::Int).not_null())
                .column(ColumnDef::new("title", DataType::Text))
                .primary_key("id"),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("cast")
                .column(ColumnDef::new("person_id", DataType::Int))
                .column(ColumnDef::new("movie_id", DataType::Int))
                .foreign_key("person_id", "person", "id")
                .foreign_key("movie_id", "movie", "id"),
        )
        .unwrap();
        db.insert("person", vec![1.into(), "george clooney".into()])
            .unwrap();
        db.insert("person", vec![2.into(), "brad pitt".into()])
            .unwrap();
        db.insert("movie", vec![10.into(), "ocean eleven".into()])
            .unwrap();
        db.insert("cast", vec![1.into(), 10.into()]).unwrap();
        db.insert("cast", vec![2.into(), 10.into()]).unwrap();
        db
    }

    #[test]
    fn node_and_edge_counts() {
        let db = tiny_db();
        let g = DataGraph::build(&db);
        assert_eq!(g.num_nodes(), 5);
        // each cast row connects to 1 person + 1 movie → 4 edges
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn keyword_index_finds_rows() {
        let db = tiny_db();
        let g = DataGraph::build(&db);
        assert_eq!(g.nodes_matching("clooney").len(), 1);
        assert_eq!(g.nodes_matching("OCEAN").len(), 1);
        assert!(g.nodes_matching("ghost").is_empty());
    }

    #[test]
    fn prestige_reflects_references() {
        let db = tiny_db();
        let g = DataGraph::build(&db);
        let movie_node = g.nodes_matching("ocean")[0];
        let person_node = g.nodes_matching("clooney")[0];
        // movie referenced twice, person once
        assert!(g.prestige(movie_node) > g.prestige(person_node));
        assert!(g.prestige(person_node) > 0.0);
    }

    #[test]
    fn neighbors_are_symmetric() {
        let db = tiny_db();
        let g = DataGraph::build(&db);
        for n in 0..g.num_nodes() as NodeId {
            for &m in g.neighbors(n) {
                assert!(g.neighbors(m).contains(&n));
            }
        }
    }

    #[test]
    fn describe_renders() {
        let db = tiny_db();
        let g = DataGraph::build(&db);
        let movie_node = g.nodes_matching("ocean")[0];
        assert_eq!(g.describe(&db, movie_node), "movie(10, ocean eleven)");
    }

    #[test]
    fn node_lookup_round_trip() {
        let db = tiny_db();
        let g = DataGraph::build(&db);
        for n in 0..g.num_nodes() as NodeId {
            let info = g.info(n);
            assert_eq!(g.node(info.table, info.row), Some(n));
        }
    }
}
