//! BANKS-style keyword search (Bhalotia et al., ICDE 2002): backward
//! expansion from each keyword's node set toward connection nodes; an answer
//! is a rooted tree spanning one match per keyword, scored by node prestige
//! over tree weight.
//!
//! This is the paper's primary comparator. Its characteristic failure mode —
//! returning the *connecting tuples* rather than the semantic unit the user
//! wanted — is exactly what the evaluation (Figure 3) measures.

use crate::graph::{DataGraph, NodeId};
use std::collections::{HashMap, VecDeque};

/// Search parameters.
#[derive(Debug, Clone)]
pub struct BanksConfig {
    /// Maximum number of answer trees to return.
    pub top_k: usize,
    /// Expansion radius limit (hops from a keyword node).
    pub max_depth: u32,
}

impl Default for BanksConfig {
    fn default() -> Self {
        BanksConfig {
            top_k: 10,
            max_depth: 6,
        }
    }
}

/// A rooted answer tree.
#[derive(Debug, Clone)]
pub struct AnswerTree {
    /// The connection node (root of the answer).
    pub root: NodeId,
    /// All nodes of the tree (root, keyword leaves, connectors), deduplicated.
    pub nodes: Vec<NodeId>,
    /// Tree edges as `(parent, child)` pairs along the expansion paths.
    pub edges: Vec<(NodeId, NodeId)>,
    /// One matched leaf per query keyword, in keyword order.
    pub leaves: Vec<NodeId>,
    /// BANKS relevance score (higher is better).
    pub score: f64,
}

/// Keyword-search engine over a [`DataGraph`].
#[derive(Debug)]
pub struct BanksEngine<'a> {
    graph: &'a DataGraph,
    config: BanksConfig,
}

/// Per-keyword BFS state: distance, parent pointer, and originating match.
struct Expansion {
    dist: Vec<u32>,
    parent: Vec<NodeId>,
    origin: Vec<NodeId>,
    reached: Vec<bool>,
}

const UNSET: NodeId = NodeId::MAX;

impl Expansion {
    fn run(graph: &DataGraph, sources: &[NodeId], max_depth: u32) -> Self {
        let n = graph.num_nodes();
        let mut e = Expansion {
            dist: vec![u32::MAX; n],
            parent: vec![UNSET; n],
            origin: vec![UNSET; n],
            reached: vec![false; n],
        };
        let mut queue = VecDeque::new();
        for &s in sources {
            if !e.reached[s as usize] {
                e.reached[s as usize] = true;
                e.dist[s as usize] = 0;
                e.origin[s as usize] = s;
                queue.push_back(s);
            }
        }
        while let Some(u) = queue.pop_front() {
            let du = e.dist[u as usize];
            if du >= max_depth {
                continue;
            }
            for &v in graph.neighbors(u) {
                if !e.reached[v as usize] {
                    e.reached[v as usize] = true;
                    e.dist[v as usize] = du + 1;
                    e.parent[v as usize] = u;
                    e.origin[v as usize] = e.origin[u as usize];
                    queue.push_back(v);
                }
            }
        }
        e
    }

    /// Path from `node` back to its originating keyword match.
    fn path_to_origin(&self, node: NodeId) -> Vec<NodeId> {
        let mut path = vec![node];
        let mut cur = node;
        while self.parent[cur as usize] != UNSET {
            cur = self.parent[cur as usize];
            path.push(cur);
        }
        path
    }
}

impl<'a> BanksEngine<'a> {
    /// New engine over `graph`.
    pub fn new(graph: &'a DataGraph, config: BanksConfig) -> Self {
        BanksEngine { graph, config }
    }

    /// Run a keyword query (whitespace-tokenized, lower-cased) and return up
    /// to `top_k` answer trees, best first. BANKS has conjunctive (AND)
    /// semantics: every keyword must match at least one tuple, or the
    /// result is empty. Note that keywords match *tuple content only* —
    /// unlike XML systems there are no element labels to match, so
    /// attribute words like "cast" find nothing unless they appear as data.
    pub fn search(&self, query: &str) -> Vec<AnswerTree> {
        let keywords: Vec<String> = relstore::index::tokenize(query);
        if keywords.is_empty() {
            return Vec::new();
        }
        let mut groups: Vec<Vec<NodeId>> = Vec::new();
        for kw in &keywords {
            let m = self.graph.nodes_matching(kw);
            if m.is_empty() {
                return Vec::new(); // AND semantics
            }
            groups.push(m.to_vec());
        }

        let expansions: Vec<Expansion> = groups
            .iter()
            .map(|g| Expansion::run(self.graph, g, self.config.max_depth))
            .collect();

        // Connection nodes: reached by every group.
        let n = self.graph.num_nodes();
        let mut answers: Vec<AnswerTree> = Vec::new();
        for v in 0..n as NodeId {
            if !expansions.iter().all(|e| e.reached[v as usize]) {
                continue;
            }
            answers.push(self.assemble(v, &expansions));
        }
        answers.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.root.cmp(&b.root))
        });
        // Deduplicate trees with identical node sets (different roots on the
        // same path produce the same semantic answer).
        let mut seen: HashMap<Vec<NodeId>, ()> = HashMap::new();
        answers.retain(|a| {
            let mut key = a.nodes.clone();
            key.sort_unstable();
            seen.insert(key, ()).is_none()
        });
        answers.truncate(self.config.top_k);
        answers
    }

    fn assemble(&self, root: NodeId, expansions: &[Expansion]) -> AnswerTree {
        let mut nodes: Vec<NodeId> = Vec::new();
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        let mut leaves: Vec<NodeId> = Vec::with_capacity(expansions.len());
        let mut weight = 0.0;
        for e in expansions {
            let path = e.path_to_origin(root); // root … origin
            leaves.push(e.origin[root as usize]);
            weight += e.dist[root as usize] as f64;
            for w in path.windows(2) {
                edges.push((w[1], w[0]));
            }
            nodes.extend(path);
        }
        nodes.sort_unstable();
        nodes.dedup();
        edges.sort_unstable();
        edges.dedup();

        // BANKS-flavored score: prestige of root and leaves, damped by tree
        // weight (number of edges traversed).
        let prestige: f64 =
            self.graph.prestige(root) + leaves.iter().map(|&l| self.graph.prestige(l)).sum::<f64>();
        let score = (1.0 + prestige) / (1.0 + weight);
        AnswerTree {
            root,
            nodes,
            edges,
            leaves,
            score,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::{ColumnDef, DataType, Database, TableSchema};

    fn movie_db() -> Database {
        let mut db = Database::new("d");
        db.create_table(
            TableSchema::new("person")
                .column(ColumnDef::new("id", DataType::Int).not_null())
                .column(ColumnDef::new("name", DataType::Text))
                .primary_key("id"),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("movie")
                .column(ColumnDef::new("id", DataType::Int).not_null())
                .column(ColumnDef::new("title", DataType::Text))
                .primary_key("id"),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("cast")
                .column(ColumnDef::new("person_id", DataType::Int))
                .column(ColumnDef::new("movie_id", DataType::Int))
                .column(ColumnDef::new("role", DataType::Text))
                .foreign_key("person_id", "person", "id")
                .foreign_key("movie_id", "movie", "id"),
        )
        .unwrap();
        for (id, name) in [
            (1, "george clooney"),
            (2, "brad pitt"),
            (3, "julia roberts"),
        ] {
            db.insert("person", vec![id.into(), name.into()]).unwrap();
        }
        for (id, title) in [(10, "ocean eleven"), (11, "solaris"), (12, "money monster")] {
            db.insert("movie", vec![id.into(), title.into()]).unwrap();
        }
        for (p, m) in [(1, 10), (2, 10), (3, 10), (1, 11), (1, 12), (3, 12)] {
            db.insert("cast", vec![p.into(), m.into(), "actor".into()])
                .unwrap();
        }
        db
    }

    #[test]
    fn single_keyword_returns_matching_node() {
        let db = movie_db();
        let g = DataGraph::build(&db);
        let engine = BanksEngine::new(&g, BanksConfig::default());
        let answers = engine.search("solaris");
        assert!(!answers.is_empty());
        let top = &answers[0];
        assert_eq!(top.nodes.len(), 1);
        assert!(g.describe(&db, top.root).contains("solaris"));
    }

    #[test]
    fn two_keywords_connect_through_cast() {
        let db = movie_db();
        let g = DataGraph::build(&db);
        let engine = BanksEngine::new(&g, BanksConfig::default());
        let answers = engine.search("clooney solaris");
        assert!(!answers.is_empty());
        let top = &answers[0];
        // Tree must contain the person node, the movie node and a cast row.
        let described: Vec<String> = top.nodes.iter().map(|&n| g.describe(&db, n)).collect();
        assert!(
            described.iter().any(|d| d.contains("clooney")),
            "{described:?}"
        );
        assert!(
            described.iter().any(|d| d.contains("solaris")),
            "{described:?}"
        );
        assert!(
            described.iter().any(|d| d.starts_with("cast(")),
            "{described:?}"
        );
        assert_eq!(top.leaves.len(), 2);
    }

    #[test]
    fn answers_sorted_by_score() {
        let db = movie_db();
        let g = DataGraph::build(&db);
        let engine = BanksEngine::new(&g, BanksConfig::default());
        let answers = engine.search("clooney ocean");
        assert!(answers.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn conjunctive_semantics_require_every_keyword() {
        let db = movie_db();
        let g = DataGraph::build(&db);
        let engine = BanksEngine::new(&g, BanksConfig::default());
        // a keyword matching no tuple text empties the result (AND semantics)
        assert!(engine.search("clooney zzzz").is_empty());
        assert!(engine.search("zzzz qqqq").is_empty());
        assert!(!engine.search("clooney").is_empty());
        // schema words are not tuple content: BANKS cannot see "cast"
        assert!(engine.search("solaris cast").is_empty());
    }

    #[test]
    fn compact_trees_beat_sprawling_ones() {
        let db = movie_db();
        let g = DataGraph::build(&db);
        let engine = BanksEngine::new(
            &g,
            BanksConfig {
                top_k: 50,
                max_depth: 6,
            },
        );
        // clooney + roberts co-star in two movies (10 and 12): best answers
        // route through a single movie, not longer chains.
        let answers = engine.search("clooney roberts");
        let top = &answers[0];
        assert!(
            top.nodes.len() <= 5,
            "top tree too big: {}",
            top.nodes.len()
        );
        // all answers connected & contain both leaves
        for a in &answers {
            assert_eq!(a.leaves.len(), 2);
            assert!(!a.nodes.is_empty());
        }
    }

    #[test]
    fn max_depth_limits_expansion() {
        let db = movie_db();
        let g = DataGraph::build(&db);
        let engine = BanksEngine::new(
            &g,
            BanksConfig {
                top_k: 10,
                max_depth: 0,
            },
        );
        // Depth 0: no expansion, so two distinct keywords can never connect.
        assert!(engine.search("clooney solaris").is_empty());
    }

    #[test]
    fn trees_are_connected() {
        let db = movie_db();
        let g = DataGraph::build(&db);
        let engine = BanksEngine::new(
            &g,
            BanksConfig {
                top_k: 20,
                max_depth: 6,
            },
        );
        for a in engine.search("pitt roberts") {
            // walk edges from root; every node must be reachable
            let mut seen = std::collections::HashSet::new();
            seen.insert(a.root);
            let mut frontier = vec![a.root];
            while let Some(u) = frontier.pop() {
                for &(x, y) in &a.edges {
                    for (from, to) in [(x, y), (y, x)] {
                        if from == u && seen.insert(to) {
                            frontier.push(to);
                        }
                    }
                }
            }
            for n in &a.nodes {
                assert!(seen.contains(n), "node {n} unreachable from root");
            }
        }
    }
}
