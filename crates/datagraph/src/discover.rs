//! A DISCOVER-flavored baseline (Hristidis & Papakonstantinou, VLDB 2002):
//! enumerate *candidate networks* — connected subtrees of the schema graph
//! whose tables can jointly cover all query keywords — then instantiate each
//! network through the relational executor with per-keyword containment
//! predicates. Smaller networks are preferred, mirroring DISCOVER's
//! size-ordered enumeration.

use relstore::{ColRef, DataType, Database, JoinEdge, Predicate, Query, TableId};
use std::collections::HashSet;

/// Search parameters.
#[derive(Debug, Clone)]
pub struct DiscoverConfig {
    /// Maximum number of tables in a candidate network.
    pub max_network_size: usize,
    /// Maximum joined tuple trees returned per query.
    pub top_k: usize,
}

impl Default for DiscoverConfig {
    fn default() -> Self {
        DiscoverConfig {
            max_network_size: 3,
            top_k: 10,
        }
    }
}

/// A candidate join network: tables plus connecting schema edges, and the
/// keyword → table assignment it realizes.
#[derive(Debug, Clone)]
pub struct CandidateNetwork {
    /// Tables in the network.
    pub tables: Vec<TableId>,
    /// Join edges (indices into `tables`).
    pub joins: Vec<JoinEdge>,
    /// For each query keyword, which network position covers it.
    pub keyword_positions: Vec<usize>,
}

/// One instantiated result: the joined rows of a candidate network.
#[derive(Debug, Clone)]
pub struct JoinedTupleTree {
    /// The network that produced it.
    pub network: CandidateNetwork,
    /// Qualified output columns.
    pub columns: Vec<String>,
    /// One joined row.
    pub row: Vec<relstore::Value>,
    /// Network size (tables) — primary ranking key, smaller first.
    pub size: usize,
}

/// The engine. Borrows the database; networks are enumerated per query.
#[derive(Debug)]
pub struct DiscoverEngine<'a> {
    db: &'a Database,
    config: DiscoverConfig,
}

impl<'a> DiscoverEngine<'a> {
    /// New engine.
    pub fn new(db: &'a Database, config: DiscoverConfig) -> Self {
        DiscoverEngine { db, config }
    }

    /// Tables with at least one row containing `keyword` in a text column,
    /// found via the per-table text indexes (built lazily by the caller via
    /// [`Database::build_all_text_indexes`]) or a scan fallback.
    fn tables_matching(&self, keyword: &str) -> Vec<(TableId, usize)> {
        let mut out = Vec::new();
        for (tid, schema) in self.db.catalog().iter() {
            let table = self.db.table(tid).expect("valid");
            for (ci, col) in schema.columns.iter().enumerate() {
                if col.dtype != DataType::Text {
                    continue;
                }
                let hit = if let Some(ix) = table.text_index(ci) {
                    !ix.get(keyword).is_empty()
                } else {
                    table.scan().any(|(_, r)| {
                        r.get(ci)
                            .and_then(relstore::Value::as_text)
                            .map(|s| s.to_lowercase().contains(keyword))
                            .unwrap_or(false)
                    })
                };
                if hit {
                    out.push((tid, ci));
                    break;
                }
            }
        }
        out
    }

    /// Run a keyword query. Returns joined tuple trees ordered by network
    /// size then executor order, up to `top_k`.
    pub fn search(&self, query: &str) -> Vec<JoinedTupleTree> {
        let keywords = relstore::index::tokenize(query);
        if keywords.is_empty() {
            return Vec::new();
        }
        // keyword → candidate (table, text column) pairs
        let per_kw: Vec<Vec<(TableId, usize)>> =
            keywords.iter().map(|k| self.tables_matching(k)).collect();
        if per_kw.iter().any(Vec::is_empty) {
            return Vec::new();
        }

        let networks = self.enumerate_networks(&per_kw);
        let mut results = Vec::new();
        for net in networks {
            if results.len() >= self.config.top_k {
                break;
            }
            let query = self.instantiate(&net, &keywords, &per_kw);
            if let Ok(rs) = self.db.execute(&query) {
                for row in rs.rows {
                    results.push(JoinedTupleTree {
                        network: net.clone(),
                        columns: rs.columns.clone(),
                        row,
                        size: net.tables.len(),
                    });
                    if results.len() >= self.config.top_k {
                        break;
                    }
                }
            }
        }
        results
    }

    /// Enumerate candidate networks in size order: connected subtrees of the
    /// schema graph where each keyword can be assigned to a member table.
    fn enumerate_networks(&self, per_kw: &[Vec<(TableId, usize)>]) -> Vec<CandidateNetwork> {
        let mut out = Vec::new();
        let catalog = self.db.catalog();

        // Seed: single tables covering all keywords.
        for (tid, _) in catalog.iter() {
            if let Some(positions) = assign_keywords(&[tid], per_kw) {
                out.push(CandidateNetwork {
                    tables: vec![tid],
                    joins: vec![],
                    keyword_positions: positions,
                });
            }
        }

        // Grow trees by attaching schema-graph neighbors, breadth-first by size.
        let mut frontier: Vec<(Vec<TableId>, Vec<JoinEdge>)> = catalog
            .iter()
            .map(|(tid, _)| (vec![tid], Vec::new()))
            .collect();
        for _size in 2..=self.config.max_network_size {
            let mut next = Vec::new();
            for (tables, joins) in &frontier {
                for (pos, &tid) in tables.iter().enumerate() {
                    for (nbr, edge) in catalog.neighbors(tid) {
                        if tables.contains(&nbr) {
                            continue; // keep it a tree
                        }
                        let mut t2 = tables.clone();
                        t2.push(nbr);
                        let new_pos = t2.len() - 1;
                        let mut j2 = joins.clone();
                        // orient the stored FK edge to the positions at hand
                        let je = if edge.from_table == tid {
                            JoinEdge::new(pos, edge.from_column, new_pos, edge.to_column)
                        } else {
                            JoinEdge::new(pos, edge.to_column, new_pos, edge.from_column)
                        };
                        j2.push(je);
                        if let Some(positions) = assign_keywords(&t2, per_kw) {
                            out.push(CandidateNetwork {
                                tables: t2.clone(),
                                joins: j2.clone(),
                                keyword_positions: positions,
                            });
                        }
                        next.push((t2, j2));
                    }
                }
            }
            frontier = next;
            // Bail out when combinatorics explode; DISCOVER prunes similarly.
            if frontier.len() > 5000 {
                break;
            }
        }
        // Deduplicate by table multiset + keyword assignment.
        let mut seen = HashSet::new();
        out.retain(|n| {
            let mut key: Vec<TableId> = n.tables.clone();
            key.sort_unstable();
            seen.insert((key, n.keyword_positions.clone()))
        });
        out.sort_by_key(|n| n.tables.len());
        out
    }

    fn instantiate(
        &self,
        net: &CandidateNetwork,
        keywords: &[String],
        per_kw: &[Vec<(TableId, usize)>],
    ) -> Query {
        let mut predicate = Predicate::True;
        for (ki, kw) in keywords.iter().enumerate() {
            let pos = net.keyword_positions[ki];
            let tid = net.tables[pos];
            // the matching text column recorded for this table
            let col = per_kw[ki]
                .iter()
                .find(|(t, _)| *t == tid)
                .map(|(_, c)| *c)
                .unwrap_or(0);
            predicate = predicate.and(Predicate::Contains(ColRef::new(pos, col), kw.clone()));
        }
        Query {
            tables: net.tables.clone(),
            joins: net.joins.clone(),
            predicate,
            projection: None,
            limit: Some(self.config.top_k),
        }
    }
}

/// Try to assign every keyword to some table in `tables`; `None` if any
/// keyword has no home.
fn assign_keywords(tables: &[TableId], per_kw: &[Vec<(TableId, usize)>]) -> Option<Vec<usize>> {
    let mut positions = Vec::with_capacity(per_kw.len());
    for cands in per_kw {
        let pos = tables
            .iter()
            .position(|t| cands.iter().any(|(ct, _)| ct == t))?;
        positions.push(pos);
    }
    Some(positions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::{ColumnDef, TableSchema};

    fn movie_db() -> Database {
        let mut db = Database::new("d");
        db.create_table(
            TableSchema::new("person")
                .column(ColumnDef::new("id", DataType::Int).not_null())
                .column(ColumnDef::new("name", DataType::Text))
                .primary_key("id"),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("movie")
                .column(ColumnDef::new("id", DataType::Int).not_null())
                .column(ColumnDef::new("title", DataType::Text))
                .primary_key("id"),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("cast")
                .column(ColumnDef::new("person_id", DataType::Int))
                .column(ColumnDef::new("movie_id", DataType::Int))
                .foreign_key("person_id", "person", "id")
                .foreign_key("movie_id", "movie", "id"),
        )
        .unwrap();
        db.insert("person", vec![1.into(), "george clooney".into()])
            .unwrap();
        db.insert("person", vec![2.into(), "brad pitt".into()])
            .unwrap();
        db.insert("movie", vec![10.into(), "ocean eleven".into()])
            .unwrap();
        db.insert("movie", vec![11.into(), "solaris".into()])
            .unwrap();
        db.insert("cast", vec![1.into(), 10.into()]).unwrap();
        db.insert("cast", vec![2.into(), 10.into()]).unwrap();
        db.insert("cast", vec![1.into(), 11.into()]).unwrap();
        db.build_all_text_indexes();
        db
    }

    #[test]
    fn single_table_network_for_single_keyword() {
        let db = movie_db();
        let e = DiscoverEngine::new(&db, DiscoverConfig::default());
        let res = e.search("solaris");
        assert!(!res.is_empty());
        assert_eq!(res[0].size, 1);
        assert!(res[0].columns.contains(&"movie.title".to_string()));
    }

    #[test]
    fn cross_table_keywords_need_a_join_network() {
        let db = movie_db();
        let e = DiscoverEngine::new(&db, DiscoverConfig::default());
        let res = e.search("clooney solaris");
        assert!(!res.is_empty());
        let top = &res[0];
        assert_eq!(top.size, 3, "person-cast-movie network");
        let joined: Vec<String> = top.row.iter().map(|v| v.display_plain()).collect();
        assert!(joined.iter().any(|v| v.contains("clooney")));
        assert!(joined.iter().any(|v| v.contains("solaris")));
    }

    #[test]
    fn smaller_networks_rank_first() {
        let db = movie_db();
        let e = DiscoverEngine::new(
            &db,
            DiscoverConfig {
                max_network_size: 3,
                top_k: 50,
            },
        );
        let res = e.search("ocean");
        assert!(res.windows(2).all(|w| w[0].size <= w[1].size));
    }

    #[test]
    fn impossible_keywords_empty() {
        let db = movie_db();
        let e = DiscoverEngine::new(&db, DiscoverConfig::default());
        assert!(e.search("qqqq").is_empty());
        assert!(e.search("").is_empty());
    }

    #[test]
    fn network_size_cap_respected() {
        let db = movie_db();
        let e = DiscoverEngine::new(
            &db,
            DiscoverConfig {
                max_network_size: 1,
                top_k: 10,
            },
        );
        // cross-table query can't be answered with 1-table networks
        assert!(e.search("clooney solaris").is_empty());
    }

    #[test]
    fn top_k_truncates() {
        let db = movie_db();
        let e = DiscoverEngine::new(
            &db,
            DiscoverConfig {
                max_network_size: 3,
                top_k: 2,
            },
        );
        assert!(e.search("ocean").len() <= 2);
    }
}
