//! # qunit-datagraph
//!
//! The tuple data graph and graph-based keyword-search baselines the paper
//! compares against (Figure 3):
//!
//! * [`graph`] — tuples as nodes, foreign-key references as edges, with a
//!   keyword → node index.
//! * [`banks`] — a reimplementation of BANKS (Bhalotia et al., ICDE 2002):
//!   backward expansion from keyword node sets toward a connecting root,
//!   answers are rooted spanning trees scored by node prestige and tree
//!   compactness.
//! * [`discover`] — a DISCOVER-flavored baseline (Hristidis &
//!   Papakonstantinou, VLDB 2002): candidate join networks enumerated on the
//!   schema graph and instantiated through the relational executor.
//!
//! These baselines exist to reproduce the paper's central observation: a
//! spanning tree of matched tuples *demarcates* a result poorly — too much
//! via id-chains, too little via missing satellite attributes.

pub mod banks;
pub mod discover;
pub mod graph;

pub use banks::{AnswerTree, BanksConfig, BanksEngine};
pub use discover::{CandidateNetwork, DiscoverConfig, DiscoverEngine, JoinedTupleTree};
pub use graph::{DataGraph, NodeId, NodeInfo};
