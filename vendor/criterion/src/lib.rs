//! Offline stub of `criterion`.
//!
//! The container has no network route to crates.io, so the workspace vendors
//! a minimal stand-in with the same macro and builder surface the benches
//! use: `criterion_group!` (both plain and `name/config/targets` forms),
//! `criterion_main!`, `Criterion::{default, sample_size, measurement_time,
//! bench_function, benchmark_group}`, `BenchmarkGroup`, `BenchmarkId`, and
//! `black_box`. Timing is plain wall-clock mean over `sample_size`
//! iterations — no statistics, no HTML reports. `--test` (what the CI bench
//! smoke passes) runs every benchmark exactly once, like real criterion.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            test_mode: false,
            filter: None,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; the stub ignores target times.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API compatibility; the stub ignores warm-up.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Reads the bench binary's CLI args: `--test` switches to one-shot
    /// smoke mode; the first free-standing token becomes a name filter.
    /// Everything else (`--bench`, criterion flags) is ignored.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--test" => self.test_mode = true,
                "--sample-size" => {
                    if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                        self = self.sample_size(n);
                    }
                }
                s if s.starts_with("--") => {}
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id.0, f, None);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(&self, name: &str, mut f: F, samples: Option<usize>) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let iters = if self.test_mode {
            1
        } else {
            samples.unwrap_or(self.sample_size)
        };
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if self.test_mode {
            println!("test {name} ... ok");
        } else {
            let mean = b.elapsed.as_secs_f64() / iters as f64;
            println!("{name}: mean {:.3} ms over {iters} iters", mean * 1e3);
        }
    }
}

pub struct Bencher {
    iters: usize,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    // Group-scoped override, like real criterion: it must NOT leak into the
    // parent Criterion after finish().
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        self.criterion.run_one(&full, f, self.sample_size);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = Some(n);
        self
    }

    pub fn finish(self) {}
}

#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run() {
        let mut c = Criterion::default().sample_size(2);
        let mut ran = 0;
        c.bench_function("solo", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.bench_function(BenchmarkId::new("f", 3), |b| {
            b.iter(|| ran += 1);
        });
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn group_sample_size_does_not_leak_to_parent() {
        let mut c = Criterion::default().sample_size(7);
        let mut group_iters = 0;
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_function("inner", |b| b.iter(|| group_iters += 1));
        g.finish();
        assert_eq!(group_iters, 3);

        let mut solo_iters = 0;
        c.bench_function("after", |b| b.iter(|| solo_iters += 1));
        assert_eq!(solo_iters, 7, "group override must be scoped to the group");
    }
}
