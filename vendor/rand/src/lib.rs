//! Offline stub of `rand` 0.8.
//!
//! The container has no network route to crates.io, so the workspace vendors
//! a minimal stand-in covering exactly the surface this repo uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng` methods
//! `gen`, `gen_range` (half-open and inclusive integer ranges, plus floats),
//! and `gen_bool`. The generator is xoshiro256** seeded via SplitMix64 —
//! not the real StdRng's ChaCha12, but statistically fine for synthetic
//! data generation and deterministic for a fixed seed.
//!
//! The trait shapes mirror real rand where it matters for inference: the
//! `SampleUniform` marker bound on `gen_range`'s output keeps expressions
//! like `x_i64 + rng.gen_range(0..50_000_000)` unambiguous, and all `Rng`
//! methods work through `R: Rng + ?Sized`.

use std::ops::{Range, RangeInclusive};

/// Seedable generators. Only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types `Rng::gen` can produce.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Types `gen_range` may return; mirrors rand's `SampleUniform`. The blanket
/// `SampleRange` impls below delegate here, so `Range<T>: SampleRange<T>`
/// holds via a single impl and type inference resolves the way it does with
/// real rand (e.g. `x_i64 + rng.gen_range(0..50_000_000)`).
pub trait SampleUniform: Sized {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

/// Ranges `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Core: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform `u64` in `[0, bound)` by rejection sampling; plain rejection
/// keeps the stub obviously correct.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        assert!(lo < hi, "cannot sample from empty range");
        lo + f64::sample(rng) * (hi - lo)
    }

    fn sample_inclusive<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        assert!(lo <= hi, "cannot sample from empty range");
        if lo == hi {
            return lo;
        }
        // For floats the inclusive upper bound is a measure-zero nicety;
        // next_up (not a raw bit increment) stays correct for negative hi.
        Self::sample_half_open(lo, hi.next_up(), rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via SplitMix64. Deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 to spread the seed over the full state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn inclusive_float_ranges_handle_negatives_and_degenerates() {
        let mut rng = StdRng::seed_from_u64(11);
        assert_eq!(rng.gen_range(-2.0f64..=-2.0), -2.0);
        assert_eq!(rng.gen_range(0.0f64..=0.0), 0.0);
        for _ in 0..1_000 {
            let v = rng.gen_range(-3.0f64..=-1.0);
            assert!((-3.0..=-1.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn works_through_unsized_generic() {
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> usize {
            let u: f64 = rng.gen();
            (u * 10.0) as usize
        }
        let mut rng = StdRng::seed_from_u64(1);
        assert!(sample(&mut rng) < 10);
    }
}
