//! Offline stub of `serde_derive`.
//!
//! The container has no network route to crates.io, so the workspace vendors
//! a minimal stand-in: the derives parse anywhere the real ones do (including
//! `#[serde(...)]` helper attributes) and expand to nothing. Serialization is
//! not on any hot path of the reproduction; the derives exist so type
//! definitions keep their serde annotations for a future swap to real serde.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
