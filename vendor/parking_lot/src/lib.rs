//! Offline stub of `parking_lot`.
//!
//! The container has no network route to crates.io, so the workspace vendors
//! a minimal stand-in: `RwLock` and `Mutex` with parking_lot's non-poisoning
//! signatures, backed by `std::sync`. Poisoned locks are recovered via
//! `into_inner`, matching parking_lot's "no poisoning" semantics.

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("RwLock").field(&&*self.read()).finish()
    }
}

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Mutex").field(&&*self.lock()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_roundtrip() {
        let lock = RwLock::new(1u32);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
