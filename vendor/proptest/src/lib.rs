//! Offline stub of `proptest`.
//!
//! The container has no network route to crates.io, so the workspace vendors
//! a minimal property-testing shim with the same surface the suites use:
//! `proptest!` (with `#![proptest_config(..)]`), `prop_compose!`,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`, the [`strategy::Strategy`]
//! trait with `prop_map`, integer-range and tuple strategies,
//! `prop::collection::vec`, and `prop::sample::select`.
//!
//! Differences from real proptest, on purpose:
//! - **no shrinking** — a failure reports the raw inputs for the failing case;
//! - **deterministic seeding** — each test's RNG is seeded from its full
//!   module path (override with `PROPTEST_SEED=<u64>`), so CI runs are
//!   reproducible by construction.

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type `Value`. No shrinking.
    pub trait Strategy {
        type Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Strategy built from a plain generator function; the backbone of
    /// `prop_compose!`.
    pub struct FnStrategy<T, F: Fn(&mut TestRng) -> T>(F);

    pub fn from_fn<T, F: Fn(&mut TestRng) -> T>(f: F) -> FnStrategy<T, F> {
        FnStrategy(f)
    }

    impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<T, F> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for [`vec()`]: a range or an exact size.
    pub trait IntoSizeRange {
        /// Returns `(min, max)` inclusive.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.0.gen_range(self.min..=self.max);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    pub struct Select<T: Clone>(Vec<T>);

    /// Uniformly selects one of the given values.
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select requires at least one value");
        Select(values)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0[rng.0.gen_range(0..self.0.len())].clone()
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The RNG handed to strategies. Field is `pub(crate)` in spirit but
    /// public so the sibling modules can sample from it.
    pub struct TestRng(pub StdRng);

    /// Mirror of `proptest::test_runner::Config` (the subset used here).
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// Deterministic per-test RNG: seeded from the test's module path, or
    /// from `PROPTEST_SEED` when set (for reproducing with a fresh seed).
    pub fn rng_for(test_path: &str) -> TestRng {
        let seed = match std::env::var("PROPTEST_SEED") {
            Ok(s) => s
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("PROPTEST_SEED must be a u64, got {s:?}")),
            Err(_) => fnv1a(test_path.as_bytes()),
        };
        TestRng(StdRng::seed_from_u64(seed))
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// A failed property: carries the rendered assertion message.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, proptest};

    /// Namespace mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::test_runner::Config as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng =
                    $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome = (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}\n    inputs: {}",
                            case + 1,
                            config.cases,
                            e,
                            inputs
                        );
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_compose {
    ( $(#[$meta:meta])* $vis:vis fn $name:ident($($p:ident: $pty:ty),* $(,)?)
      ( $($arg:ident in $strat:expr),+ $(,)? ) -> $ret:ty $body:block ) => {
        $(#[$meta])*
        $vis fn $name($($p: $pty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::from_fn(move |rng| {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), rng);)+
                $body
            })
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn pairs()(v in prop::collection::vec((0i64..4, prop::sample::select(vec!["a", "b"])), 0..6)) -> Vec<(i64, String)> {
            v.into_iter().map(|(n, s)| (n, s.to_string())).collect()
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 0i64..10, y in 1usize..=3) {
            prop_assert!((0..10).contains(&x));
            prop_assert!((1..=3).contains(&y));
        }

        #[test]
        fn composed_strategy_respects_bounds(v in pairs()) {
            prop_assert!(v.len() < 6);
            for (n, s) in &v {
                prop_assert!((0..4).contains(n), "n out of range: {n}");
                prop_assert!(s == "a" || s == "b");
            }
        }

        #[test]
        fn map_applies(s in (0u8..5).prop_map(|n| n.to_string())) {
            prop_assert_eq!(s.parse::<u8>().unwrap() < 5, true);
        }
    }

    #[test]
    fn deterministic_without_env_seed() {
        let mut a = crate::test_runner::rng_for("x::y");
        let mut b = crate::test_runner::rng_for("x::y");
        let s = 0i64..100;
        use crate::strategy::Strategy;
        for _ in 0..50 {
            assert_eq!(s.new_value(&mut a), s.new_value(&mut b));
        }
    }
}
