//! Offline stub of `serde`.
//!
//! The container has no network route to crates.io, so the workspace vendors
//! a minimal stand-in. It provides the two marker traits and (behind the
//! `derive` feature, mirroring the real crate) re-exports the no-op derive
//! macros from the vendored `serde_derive`. Code in this repo only ever
//! *derives* the traits — nothing serializes yet — so this is the entire
//! surface needed. Swapping in real serde later is a Cargo.toml-only change.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
